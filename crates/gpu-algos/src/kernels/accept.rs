//! The acceptance kernel (paper Section VI-C): the standard metropolis
//! criterion at the host-advanced temperature, plus per-thread personal-best
//! maintenance (so the final reduction can return the best-ever solution,
//! not merely the best *current* state).

use crate::kernels::fitness::CORRUPT_ENERGY;
use cdd_meta::sa::metropolis_accept;
use cuda_sim::{Buf, DeviceCtx, Kernel, TelemetryRing};

/// Telemetry probe handed to the acceptance kernel on sampled runs. Probe
/// access goes through the simulator's instrumentation port, so carrying one
/// changes no result, cost, or fault behaviour (see `cuda_sim::telemetry`).
#[derive(Debug, Clone, Copy)]
pub struct SaProbe {
    /// Destination ring.
    pub ring: TelemetryRing,
    /// Ring slot for this generation; `None` still counts accepted moves
    /// but records no sample.
    pub slot: Option<usize>,
}

/// Applies the metropolis rule per thread and tracks personal bests.
pub struct AcceptKernel {
    /// Current sequences (updated in place on acceptance).
    pub current: Buf<u32>,
    /// Candidate sequences from the perturbation kernel.
    pub candidate: Buf<u32>,
    /// Current energies.
    pub energies: Buf<i64>,
    /// Candidate energies from the fitness kernel.
    pub cand_energies: Buf<i64>,
    /// Personal-best sequences.
    pub best_rows: Buf<u32>,
    /// Personal-best energies (seed with `i64::MAX` before the first
    /// generation; the first pass then records the initial states).
    pub best_energies: Buf<i64>,
    /// XORWOW states.
    pub rng: Buf<u64>,
    /// Jobs per sequence.
    pub n: usize,
    /// Live threads.
    pub ensemble: usize,
    /// Current temperature (cooled on the host between generations, as the
    /// exponential schedule of Algorithm 1 prescribes).
    pub temperature: f64,
    /// Per-segment temperatures for fused batch launches: request `r` owns
    /// threads `[r·segment, (r+1)·segment)` and cools independently, so the
    /// fused acceptance applies `temps[gid / segment]`. `None` (every
    /// single-request pipeline) applies `temperature` to all threads.
    pub segment_temps: Option<(usize, Vec<f64>)>,
    /// Optional convergence-telemetry probe; `None` when telemetry is off.
    pub telemetry: Option<SaProbe>,
    /// Optional per-thread sticky dirty flags for the delta-fitness path:
    /// set to 1 when the move is accepted (the committed row diverged from
    /// the thread's delta cache); cleared only by the delta kernel when it
    /// rebuilds the cache. `None` keeps writes — and modeled cost —
    /// bit-identical to the full-evaluation path.
    pub flags: Option<Buf<u32>>,
}

impl Kernel for AcceptKernel {
    type Shared = ();
    type ThreadState = ();

    fn name(&self) -> &str {
        "acceptance"
    }

    fn make_shared(&self, _block_dim: usize) {}

    fn phase<C: DeviceCtx>(&self, _p: usize, ctx: &mut C, _s: &mut (), _t: &mut ()) {
        let gid = ctx.global_id();
        if gid >= self.ensemble {
            return;
        }
        let n = self.n;
        let mut rng = ctx.load_rng(self.rng, gid);

        let mut energy = ctx.read(self.energies, gid);
        let mut energy_new = ctx.read(self.cand_energies, gid);
        if ctx.fault_injection_active() {
            // A flipped energy read can reach ±2^63; clamping bounds the
            // metropolis difference (and any corrupted value loses to every
            // genuine objective anyway).
            energy = energy.clamp(0, CORRUPT_ENERGY);
            energy_new = energy_new.clamp(0, CORRUPT_ENERGY);
        }
        let temperature = match &self.segment_temps {
            Some((segment, temps)) => {
                ctx.charge_alu(1); // the segment-index division
                temps[gid / segment]
            }
            None => self.temperature,
        };
        let u = rng.next_f64();
        ctx.charge_special(1); // exp() in the metropolis rule
        ctx.charge_alu(4);

        // Personal-best maintenance, part 1: capture the pre-acceptance
        // state *before* it can be overwritten (on the first generation this
        // records the initial sequence; on later ones it is usually a no-op
        // because the best already reflects this state).
        let mut best = ctx.read(self.best_energies, gid);
        if energy < best {
            ctx.copy_row(self.current, gid * n, self.best_rows, gid * n, n);
            ctx.write(self.best_energies, gid, energy);
            best = energy;
        }

        let accepted = metropolis_accept(energy, energy_new, temperature, u);
        if accepted {
            ctx.copy_row(self.candidate, gid * n, self.current, gid * n, n);
            ctx.write(self.energies, gid, energy_new);
            // Part 2: the newly accepted state may improve the best.
            if energy_new < best {
                ctx.copy_row(self.current, gid * n, self.best_rows, gid * n, n);
                ctx.write(self.best_energies, gid, energy_new);
                best = energy_new;
            }
        }

        if let Some(flags) = self.flags {
            // Sticky: acceptance marks the row changed; only the delta
            // kernel's cache rebuild clears the flag.
            if accepted {
                ctx.write(flags, gid, 1);
            }
        }

        if let Some(probe) = &self.telemetry {
            let count = probe.ring.bump_counter(ctx, gid, i64::from(accepted));
            if let Some(slot) = probe.slot {
                let settled = if accepted { energy_new } else { energy };
                probe.ring.write_sample(ctx, slot, gid, [best, settled, count]);
            }
        }

        ctx.store_rng(self.rng, gid, &rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuda_sim::{DeviceSpec, Gpu, LaunchConfig, XorWow};

    struct Fixture {
        gpu: Gpu,
        k: AcceptKernel,
    }

    fn fixture(energies: &[i64], cand_energies: &[i64], temperature: f64) -> Fixture {
        let t = energies.len();
        let n = 4usize;
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        gpu.set_race_detection(true);
        let current = gpu.alloc::<u32>(t * n);
        gpu.h2d(current, &(0..t).flat_map(|_| [0u32, 1, 2, 3]).collect::<Vec<_>>());
        let candidate = gpu.alloc::<u32>(t * n);
        gpu.h2d(candidate, &(0..t).flat_map(|_| [3u32, 2, 1, 0]).collect::<Vec<_>>());
        let e = gpu.alloc::<i64>(t);
        gpu.h2d(e, energies);
        let ce = gpu.alloc::<i64>(t);
        gpu.h2d(ce, cand_energies);
        let best_rows = gpu.alloc::<u32>(t * n);
        let best_e = gpu.alloc::<i64>(t);
        gpu.h2d(best_e, &vec![i64::MAX; t]);
        let rng = gpu.alloc::<u64>(t * 3);
        let words: Vec<u64> = (0..t).flat_map(|i| XorWow::new(3, i as u64).pack()).collect();
        gpu.h2d(rng, &words);
        let k = AcceptKernel {
            current,
            candidate,
            energies: e,
            cand_energies: ce,
            best_rows,
            best_energies: best_e,
            rng,
            n,
            ensemble: t,
            temperature,
            segment_temps: None,
            telemetry: None,
            flags: None,
        };
        Fixture { gpu, k }
    }

    #[test]
    fn improvements_always_accepted() {
        let mut f = fixture(&[100, 100], &[50, 99], 0.001);
        f.gpu.launch(&f.k, LaunchConfig::linear(1, 2), &[]).unwrap();
        assert_eq!(f.gpu.d2h(f.k.energies), vec![50, 99]);
        // Current rows replaced by the candidate.
        assert_eq!(&f.gpu.d2h(f.k.current)[..4], &[3, 2, 1, 0]);
        // Personal bests recorded.
        assert_eq!(f.gpu.d2h(f.k.best_energies), vec![50, 99]);
        assert_eq!(&f.gpu.d2h(f.k.best_rows)[..4], &[3, 2, 1, 0]);
    }

    #[test]
    fn cold_chain_rejects_uphill() {
        let mut f = fixture(&[10], &[1_000_000], 1e-9);
        f.gpu.launch(&f.k, LaunchConfig::linear(1, 1), &[]).unwrap();
        assert_eq!(f.gpu.d2h(f.k.energies), vec![10]);
        assert_eq!(&f.gpu.d2h(f.k.current)[..4], &[0, 1, 2, 3]);
        // Personal best still captures the (initial) current state.
        assert_eq!(f.gpu.d2h(f.k.best_energies), vec![10]);
        assert_eq!(&f.gpu.d2h(f.k.best_rows)[..4], &[0, 1, 2, 3]);
    }

    #[test]
    fn hot_chain_accepts_uphill_often() {
        // With T ≫ ΔE, exp(−ΔE/T) ≈ 1 ≥ u for essentially every draw.
        let t = 64;
        let mut f = fixture(&vec![10; t], &vec![11; t], 1e12);
        f.gpu.launch(&f.k, LaunchConfig::linear(2, 32), &[]).unwrap();
        let accepted = f.gpu.d2h(f.k.energies).iter().filter(|&&e| e == 11).count();
        assert!(accepted >= 60, "only {accepted}/64 uphill moves accepted at huge T");
    }

    #[test]
    fn probe_records_best_current_and_accept_count() {
        let mut f = fixture(&[100, 10], &[50, 1_000_000], 1e-9);
        let ring = cuda_sim::TelemetryRing::alloc(&mut f.gpu, 2, 1);
        f.k.telemetry = Some(SaProbe { ring, slot: Some(0) });
        f.gpu.launch(&f.k, LaunchConfig::linear(1, 2), &[]).unwrap();
        let (lanes, counters) = ring.snapshot(&f.gpu);
        // Chain 0 accepts the downhill move: best = settled = 50, 1 accept.
        assert_eq!(&lanes[..3], &[50, 50, 1]);
        // Chain 1 rejects uphill at cold T: best = settled = 10, 0 accepts.
        assert_eq!(&lanes[3..6], &[10, 10, 0]);
        assert_eq!(counters, vec![1, 0]);
    }

    #[test]
    fn personal_best_never_worsens() {
        let mut f = fixture(&[5], &[8], 1e12); // uphill accepted at huge T
        f.gpu.launch(&f.k, LaunchConfig::linear(1, 1), &[]).unwrap();
        // Energy moved to 8, but best stays 5.
        assert_eq!(f.gpu.d2h(f.k.energies), vec![8]);
        assert_eq!(f.gpu.d2h(f.k.best_energies), vec![5]);
        assert_eq!(&f.gpu.d2h(f.k.best_rows)[..4], &[0, 1, 2, 3]);
    }
}
