//! The fitness kernel (paper Section VI-A).
//!
//! Phase 0 cooperatively stages the earliness/tardiness (and compression)
//! penalty rates into **shared memory** — "because this memory has shorter
//! latency than global memory" — and the engine's phase boundary plays the
//! role of the `__syncthreads()` barrier that "ensures that all the write
//! operations on the shared memory are finished before reading them".
//!
//! Phase 1 reads the thread's job sequence and the (deliberately uncached)
//! processing times from global memory and runs the O(n) fixed-sequence
//! optimizer of `cdd-core` as the fitness function.

use crate::layout::ProblemDevice;
use cdd_core::cdd_optimal::cdd_objective_raw;
use cdd_core::ucddcp_optimal::ucddcp_objective_raw;
use cdd_core::ProblemKind;
use cuda_sim::{Buf, DeviceCtx, Kernel, ScratchArena};

/// Sentinel energy written when fault injection corrupted a thread's inputs
/// beyond evaluation (non-permutation sequence, out-of-range data). Large
/// enough to lose every argmin against a genuine objective, yet below the
/// packed-argmin value cap (`2^42`), so reductions stay well-defined.
pub const CORRUPT_ENERGY: i64 = 1 << 40;

/// Upper bound accepted for problem data (processing times, penalty rates)
/// when validating under fault injection. Benchmark data is orders of
/// magnitude below this; a high bit flip lands far above it.
pub(crate) const VALUE_CAP: i64 = 1 << 20;

/// Evaluates one job sequence per thread.
///
/// The kernel is built once per pipeline run ([`FitnessKernel::new`]) and
/// owns persistent scratch arenas: the per-block staged rates and the
/// per-thread working vectors survive across launches, so a steady-state
/// generation performs zero heap allocation (the vectors are resized on the
/// first launch and fully overwritten on every one).
pub struct FitnessKernel {
    /// Uploaded problem data.
    pub prob: ProblemDevice,
    /// Sequences, row-major: thread `t` owns `seqs[t·n .. (t+1)·n]`.
    pub seqs: Buf<u32>,
    /// Output objective per thread.
    pub out: Buf<i64>,
    /// Number of live threads (threads with `gid ≥ ensemble` idle).
    pub ensemble: usize,
    /// Per-block staged shared memory, indexed by block id.
    staged: ScratchArena<StagedRates>,
    /// Per-thread working vectors, indexed by global thread id.
    scratch: ScratchArena<FitnessScratch>,
}

/// Penalty rates staged in shared memory.
#[derive(Default)]
pub struct StagedRates {
    alpha: Vec<i64>,
    beta: Vec<i64>,
    gamma: Vec<i64>,
}

/// Per-thread registers/local memory.
#[derive(Default)]
pub struct FitnessScratch {
    seq: Vec<u32>,
    p: Vec<i64>,
    m: Vec<i64>,
    /// Seen-marks for the permutation check under fault injection.
    marks: Vec<bool>,
}

impl FitnessKernel {
    /// Build the kernel for launches of up to `blocks` blocks, evaluating
    /// `ensemble` live threads.
    pub fn new(
        prob: ProblemDevice,
        seqs: Buf<u32>,
        out: Buf<i64>,
        ensemble: usize,
        blocks: usize,
    ) -> Self {
        // Job ids travel through u32 sequence buffers; checking once here
        // makes every `n as u32`/`n as i64` cast downstream exact.
        assert!(
            u32::try_from(prob.n).is_ok(),
            "sequence length {} exceeds the u32 job-id domain",
            prob.n
        );
        FitnessKernel {
            prob,
            seqs,
            out,
            ensemble,
            staged: ScratchArena::new(blocks),
            scratch: ScratchArena::new(ensemble),
        }
    }

    /// Validate the thread's staged inputs before evaluating. Only consulted
    /// under fault injection: a bit flip can turn a job id into an
    /// out-of-bounds index, a processing time into an overflowing magnitude,
    /// or (UCDDCP) break the unrestricted-due-date precondition — all of
    /// which the evaluators are entitled to assume away on clean hardware.
    fn inputs_valid(&self, shared: &StagedRates, scratch: &mut FitnessScratch, d: i64) -> bool {
        let n = self.prob.n;
        scratch.marks.clear();
        scratch.marks.resize(n, false);
        for &j in &scratch.seq {
            // u32 → usize is a widening cast on every supported target;
            // a bit-flipped id is caught by the bounds check below, not
            // silently truncated into a valid-looking index.
            let j = j as usize;
            if j >= n || scratch.marks[j] {
                return false;
            }
            scratch.marks[j] = true;
        }
        let rates_ok = |v: &[i64]| v.iter().all(|&x| (0..=VALUE_CAP).contains(&x));
        if !scratch.p.iter().all(|&x| (1..=VALUE_CAP).contains(&x))
            || !rates_ok(&shared.alpha)
            || !rates_ok(&shared.beta)
        {
            return false;
        }
        if self.prob.kind == ProblemKind::Ucddcp {
            if !rates_ok(&shared.gamma)
                || !scratch.m.iter().zip(&scratch.p).all(|(&m, &p)| (0..=p).contains(&m))
            {
                return false;
            }
            // The UCDDCP evaluator requires an unrestricted due date (Σp ≤ d).
            if scratch.p.iter().sum::<i64>() > d {
                return false;
            }
        }
        true
    }
}

impl Kernel for FitnessKernel {
    // Shared memory and thread state live in the kernel's persistent
    // arenas (keyed by block id / global id) instead of per-launch
    // `make_shared`/`Default` values, so launches allocate nothing.
    type Shared = ();
    type ThreadState = ();

    fn name(&self) -> &str {
        "fitness"
    }

    fn make_shared(&self, _block_dim: usize) {}

    fn shared_mem_bytes(&self, _block_dim: usize) -> usize {
        self.prob.staged_shared_bytes()
    }

    fn num_phases(&self) -> usize {
        2
    }

    fn phase<C: DeviceCtx>(&self, phase: usize, ctx: &mut C, _shared: &mut (), _state: &mut ()) {
        let n = self.prob.n;
        if phase == 0 {
            // Cooperative staging: threads conceptually load elements
            // tid, tid+blockDim, …; the engine performs the copy once and
            // every thread charges its share of the traffic.
            if ctx.thread_idx() == 0 {
                self.staged.with_slot(ctx.block_idx(), |shared| {
                    shared.alpha.resize(n, 0);
                    ctx.cooperative_read(self.prob.alpha, 0, &mut shared.alpha);
                    shared.beta.resize(n, 0);
                    ctx.cooperative_read(self.prob.beta, 0, &mut shared.beta);
                    if self.prob.kind == ProblemKind::Ucddcp {
                        shared.gamma.resize(n, 0);
                        ctx.cooperative_read(self.prob.gamma, 0, &mut shared.gamma);
                    }
                });
            }
            let arrays = if self.prob.kind == ProblemKind::Ucddcp { 3 } else { 2 };
            let share = n.div_ceil(ctx.block_dim()) as u64;
            ctx.charge_global(arrays * share);
            ctx.charge_shared(arrays * share);
            return;
        }

        // Phase 1: evaluate (past the barrier, staged rates are visible).
        let gid = ctx.global_id();
        if gid >= self.ensemble {
            return;
        }
        let d = ctx.read_const(self.prob.scalars, 0);
        debug_assert_eq!(ctx.read_const(self.prob.scalars, 1), n as i64);

        self.staged.with_slot(ctx.block_idx(), |shared| {
            self.scratch.with_slot(gid, |scratch| {
                scratch.seq.resize(n, 0);
                ctx.read_slice_into(self.seqs, gid * n, &mut scratch.seq);
                // The simulator must observe (charge, race-track,
                // fault-filter) every read of the problem arrays, so it
                // stages them into scratch; the native backend serves them
                // as zero-copy windows below and skips the staging.
                let zero_copy = ctx.global_window_i64(self.prob.p, 0, n).is_some();
                if !zero_copy {
                    scratch.p.resize(n, 0);
                    ctx.read_slice_into(self.prob.p, 0, &mut scratch.p);
                    if self.prob.kind == ProblemKind::Ucddcp {
                        scratch.m.resize(n, 0);
                        ctx.read_slice_into(self.prob.m, 0, &mut scratch.m);
                    }
                }

                // Under fault injection, a corrupted input set is detected up
                // front and scored with the sentinel instead of evaluated
                // (the evaluators would index out of bounds or overflow on
                // it). The clean path skips the validation entirely, so
                // timing and results are bit-identical with no plan
                // installed. (Fault plans are sim-only, so the staged copies
                // the validation reads always exist when this fires.)
                if ctx.fault_injection_active() && !self.inputs_valid(shared, scratch, d) {
                    ctx.charge_alu(4 * n as u64); // the validation scan
                    ctx.write(self.out, gid, CORRUPT_ENERGY);
                    return;
                }

                match self.prob.kind {
                    ProblemKind::Cdd => {
                        // ~2 passes over shared rates + register arithmetic.
                        ctx.charge_shared(2 * n as u64);
                        ctx.charge_alu(8 * n as u64);
                    }
                    ProblemKind::Ucddcp => {
                        ctx.charge_shared(3 * n as u64);
                        ctx.charge_alu(12 * n as u64);
                    }
                }
                let objective = {
                    let p = ctx.global_window_i64(self.prob.p, 0, n).unwrap_or(&scratch.p);
                    match self.prob.kind {
                        ProblemKind::Cdd => {
                            cdd_objective_raw(p, &shared.alpha, &shared.beta, d, &scratch.seq)
                        }
                        ProblemKind::Ucddcp => {
                            let m =
                                ctx.global_window_i64(self.prob.m, 0, n).unwrap_or(&scratch.m);
                            ucddcp_objective_raw(
                                p,
                                m,
                                &shared.alpha,
                                &shared.beta,
                                &shared.gamma,
                                d,
                                &scratch.seq,
                            )
                        }
                    }
                };
                // Flipped-but-valid data can still produce objectives past
                // the packed-argmin range; the clamp keeps downstream
                // reductions safe.
                let objective = if ctx.fault_injection_active() {
                    objective.clamp(0, CORRUPT_ENERGY)
                } else {
                    objective
                };
                ctx.write(self.out, gid, objective);
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::ProblemDevice;
    use cdd_core::eval::evaluator_for;
    use cdd_core::{Instance, JobSequence};
    use cuda_sim::{DeviceSpec, Gpu, LaunchConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_matches_cpu(inst: &Instance, threads: usize, block: usize) {
        let n = inst.n();
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        gpu.set_race_detection(true);
        let prob = ProblemDevice::upload(&mut gpu, inst).unwrap();

        let mut rng = StdRng::seed_from_u64(42);
        let seqs: Vec<JobSequence> =
            (0..threads).map(|_| JobSequence::random(n, &mut rng)).collect();
        let flat: Vec<u32> = seqs.iter().flat_map(|s| s.as_slice().iter().copied()).collect();
        let seq_buf = gpu.alloc::<u32>(threads * n);
        gpu.h2d(seq_buf, &flat);
        let out = gpu.alloc::<i64>(threads);

        let kernel =
            FitnessKernel::new(prob, seq_buf, out, threads, threads.div_ceil(block));
        let stats = gpu
            .launch(&kernel, LaunchConfig::cover(threads, block), &[])
            .unwrap();
        assert!(stats.timing.seconds > 0.0);

        let device = gpu.d2h(out);
        let eval = evaluator_for(inst);
        for (t, seq) in seqs.iter().enumerate() {
            assert_eq!(
                device[t],
                eval.evaluate(seq.as_slice()),
                "thread {t} disagrees with the CPU evaluator"
            );
        }
    }

    #[test]
    fn cdd_fitness_matches_cpu_evaluator() {
        check_matches_cpu(&Instance::paper_example_cdd(), 64, 32);
    }

    #[test]
    fn ucddcp_fitness_matches_cpu_evaluator() {
        check_matches_cpu(&Instance::paper_example_ucddcp(), 48, 16);
    }

    #[test]
    fn paper_identity_sequence_scores_81() {
        let inst = Instance::paper_example_cdd();
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        let prob = ProblemDevice::upload(&mut gpu, &inst).unwrap();
        let seq_buf = gpu.alloc::<u32>(5);
        gpu.h2d(seq_buf, &[0, 1, 2, 3, 4]);
        let out = gpu.alloc::<i64>(1);
        let kernel = FitnessKernel::new(prob, seq_buf, out, 1, 1);
        gpu.launch(&kernel, LaunchConfig::linear(1, 32), &[]).unwrap();
        assert_eq!(gpu.d2h(out)[0], 81);
    }

    #[test]
    fn idle_threads_do_not_touch_memory() {
        // ensemble = 1 but 64 threads: only out[0] may be written.
        let inst = Instance::paper_example_cdd();
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        gpu.set_race_detection(true);
        let prob = ProblemDevice::upload(&mut gpu, &inst).unwrap();
        let seq_buf = gpu.alloc::<u32>(5);
        gpu.h2d(seq_buf, &[4, 3, 2, 1, 0]);
        let out = gpu.alloc::<i64>(2);
        gpu.h2d(out, &[-1, -1]);
        let kernel = FitnessKernel::new(prob, seq_buf, out, 1, 2);
        gpu.launch(&kernel, LaunchConfig::linear(2, 32), &[]).unwrap();
        let host = gpu.d2h(out);
        assert_ne!(host[0], -1);
        assert_eq!(host[1], -1);
    }

    #[test]
    fn shared_footprint_scales_with_problem() {
        let inst = Instance::paper_example_ucddcp();
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        let prob = ProblemDevice::upload(&mut gpu, &inst).unwrap();
        let seq_buf = gpu.alloc::<u32>(5);
        let out = gpu.alloc::<i64>(1);
        let k = FitnessKernel::new(prob, seq_buf, out, 1, 1);
        assert_eq!(k.shared_mem_bytes(192), 3 * 5 * 8);
    }
}
