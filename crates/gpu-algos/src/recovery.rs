//! Resilience layer for the GPU pipelines: bounded launch retries, whole-run
//! device re-attempts under a reseeded fault plan, CPU-oracle validation of
//! device results, and graceful degradation to the CPU metaheuristics.
//!
//! The layering mirrors what a production campaign runner does on real
//! hardware:
//!
//! 1. **Launch retry** — transient launch failures and watchdog kills are
//!    retried in place up to [`RecoveryPolicy::max_launch_retries`] times
//!    (the bounded-backoff analogue; the simulator has no wall clock to
//!    sleep on, so the bound *is* the backoff). The injection streams
//!    advance per launch, so each retry sees fresh fault draws.
//! 2. **Device re-attempt** — if a run keeps failing (retries exhausted, or
//!    its result fails oracle validation beyond repair), the whole run is
//!    restarted on a fresh device, up to
//!    [`RecoveryPolicy::max_device_attempts`] times, with the fault plan
//!    reseeded per attempt so a doomed fault sequence is not replayed.
//! 3. **Oracle validation** — every returned result is re-evaluated with
//!    the exact CPU evaluator. A corrupted reduction winner is repaired by
//!    re-deriving the argmin over all device rows on the host.
//! 4. **CPU fallback** — after the device attempts are exhausted, the
//!    equivalent CPU metaheuristic (`cdd-meta`) produces the result, flagged
//!    in [`RecoveryStats::cpu_fallback`].

use crate::sa_pipeline::GpuRunResult;
use cdd_core::eval::SequenceEvaluator;
use cdd_core::{Cost, JobSequence, SuiteError};
use cuda_sim::{Buf, ExecBackend, FaultPlan, FaultStats, Kernel, LaunchConfig, LaunchError};

/// Knobs of the resilience layer.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPolicy {
    /// In-place retries of a transiently failed launch before the whole
    /// device attempt is abandoned.
    pub max_launch_retries: u32,
    /// Whole-run device attempts before degrading to the CPU fallback.
    pub max_device_attempts: u32,
    /// Whether to fall back to the CPU metaheuristic after all device
    /// attempts fail (when `false`, the last error is returned instead).
    pub cpu_fallback: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy { max_launch_retries: 3, max_device_attempts: 3, cpu_fallback: true }
    }
}

/// What the resilience layer actually did during a run.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct RecoveryStats {
    /// Transiently failed launches that were retried.
    pub launch_retries: u64,
    /// Device attempts consumed (1 = clean first attempt).
    pub device_attempts: u32,
    /// Device results rejected by the CPU oracle and repaired on the host.
    pub oracle_rejections: u64,
    /// Whether the result came from the CPU fallback, not the device.
    pub cpu_fallback: bool,
    /// Faults injected across all device attempts.
    pub faults: FaultStats,
}

/// Convert a simulator launch error into the suite umbrella, preserving
/// transience (the orphan rule keeps this out of both defining crates).
/// A lost device maps to the dedicated [`SuiteError::DeviceLost`] variant:
/// it is *not* recoverable inside the pipeline (the device is gone, another
/// attempt on it cannot succeed), so [`run_with_recovery`] surfaces it
/// immediately to whoever owns the device lifecycle.
pub fn suite_device_error(e: &LaunchError) -> SuiteError {
    match e {
        LaunchError::DeviceLost { .. } => SuiteError::device_lost(e.to_string()),
        _ => SuiteError::device(e.to_string(), e.is_transient()),
    }
}

/// Accumulate per-attempt fault counters into the run-level stats.
pub(crate) fn merge_faults(into: &mut FaultStats, f: FaultStats) {
    into.launches_attempted += f.launches_attempted;
    into.transient_launch_failures += f.transient_launch_failures;
    into.bit_flips += f.bit_flips;
    into.hung_kernels += f.hung_kernels;
    into.worker_crashes += f.worker_crashes;
}

/// Launch `kernel`, retrying transient failures up to the policy's bound.
pub fn launch_with_retry<B: ExecBackend, K: Kernel + Sync>(
    gpu: &mut B,
    kernel: &K,
    cfg: LaunchConfig,
    policy: &RecoveryPolicy,
    stats: &mut RecoveryStats,
) -> Result<(), LaunchError> {
    let mut retries = 0;
    loop {
        match gpu.launch_kernel(kernel, cfg, &[]) {
            Ok(_) => return Ok(()),
            Err(e) if e.is_transient() && retries < policy.max_launch_retries => {
                retries += 1;
                stats.launch_retries += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Validate the claimed reduction winner against the CPU oracle; on
/// rejection, repair by re-deriving the argmin over *all* device rows on the
/// host (skipping rows bit flips pushed out of the permutation space).
///
/// Returns the oracle-verified `(sequence, objective)`, or
/// [`SuiteError::CorruptResult`] when not a single device row survives
/// validation.
#[allow(clippy::too_many_arguments)]
pub fn verified_best<B: ExecBackend, E: SequenceEvaluator + ?Sized>(
    gpu: &mut B,
    rows: Buf<u32>,
    n: usize,
    ensemble: usize,
    winner: usize,
    claimed: Cost,
    eval: &E,
    stats: &mut RecoveryStats,
) -> Result<(JobSequence, Cost), SuiteError> {
    if winner < ensemble {
        let row = gpu.d2h_range(rows, winner * n, n);
        if let Ok(seq) = JobSequence::from_vec(row) {
            let oracle = eval.evaluate(seq.as_slice());
            if oracle == claimed {
                return Ok((seq, oracle));
            }
        }
    }
    // The packed key, the winning row, or the energy it carried was
    // corrupted: the device's reduction cannot be trusted, so redo it on the
    // host over every personal-best row.
    stats.oracle_rejections += 1;
    let all = gpu.d2h(rows);
    let mut best: Option<(JobSequence, Cost)> = None;
    for t in 0..ensemble {
        let Ok(seq) = JobSequence::from_vec(all[t * n..(t + 1) * n].to_vec()) else {
            continue;
        };
        let obj = eval.evaluate(seq.as_slice());
        if best.as_ref().is_none_or(|(_, b)| obj < *b) {
            best = Some((seq, obj));
        }
    }
    best.ok_or_else(|| {
        SuiteError::corrupt(format!("none of the {ensemble} device rows is a valid permutation"))
    })
}

/// Drive a full pipeline run through the recovery layers: device attempts
/// under per-attempt reseeded fault plans, then the CPU fallback.
///
/// `attempt` performs one complete device run (it receives the plan for that
/// attempt and records launch retries / fault counters in the shared stats);
/// `cpu_fallback` computes the equivalent CPU result. The returned result
/// carries the accumulated [`RecoveryStats`].
pub fn run_with_recovery(
    policy: &RecoveryPolicy,
    fault: Option<&FaultPlan>,
    mut attempt: impl FnMut(Option<FaultPlan>, &mut RecoveryStats) -> Result<GpuRunResult, SuiteError>,
    cpu_fallback: impl FnOnce() -> GpuRunResult,
) -> Result<GpuRunResult, SuiteError> {
    let mut stats = RecoveryStats::default();
    let attempts = policy.max_device_attempts.max(1);
    let mut last_err = None;
    for k in 0..attempts {
        stats.device_attempts = k + 1;
        // Attempt 0 runs the plan as given (reproducibility of the campaign
        // cell); later attempts decorrelate so the same doomed fault
        // sequence is not replayed verbatim.
        let plan = fault.map(|p| {
            if k == 0 {
                p.clone()
            } else {
                p.reseeded(p.seed ^ 0x9e3779b97f4a7c15u64.wrapping_mul(k as u64))
            }
        });
        match attempt(plan, &mut stats) {
            Ok(mut r) => {
                r.recovery = stats;
                return Ok(r);
            }
            Err(e) if e.is_recoverable() => last_err = Some(e),
            Err(e) => return Err(e),
        }
    }
    if policy.cpu_fallback {
        stats.cpu_fallback = true;
        let mut r = cpu_fallback();
        r.recovery = stats;
        Ok(r)
    } else {
        Err(last_err.unwrap_or_else(|| SuiteError::corrupt("no device attempt executed")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuda_sim::{DeviceSpec, Gpu};

    fn dummy_result(tag: f64) -> GpuRunResult {
        GpuRunResult {
            best: JobSequence::from_vec(vec![0]).unwrap(),
            objective: 0,
            evaluations: 0,
            t0: tag,
            modeled_seconds: 0.0,
            kernel_seconds: 0.0,
            transfer_seconds: 0.0,
            kernel_launches: 0,
            profiler_summary: String::new(),
            timeline: Vec::new(),
            recovery: RecoveryStats::default(),
            convergence: None,
        }
    }

    #[test]
    fn first_success_short_circuits() {
        let policy = RecoveryPolicy::default();
        let r = run_with_recovery(
            &policy,
            None,
            |plan, _| {
                assert!(plan.is_none());
                Ok(dummy_result(1.0))
            },
            || unreachable!("fallback must not run"),
        )
        .unwrap();
        assert_eq!(r.recovery.device_attempts, 1);
        assert!(!r.recovery.cpu_fallback);
    }

    #[test]
    fn attempts_reseed_then_fall_back() {
        let policy = RecoveryPolicy { max_device_attempts: 3, ..Default::default() };
        let base = FaultPlan::with_rates(10, 0.5, 0.0, 0.0);
        let mut seen = Vec::new();
        let r = run_with_recovery(
            &policy,
            Some(&base),
            |plan, _| {
                seen.push(plan.unwrap().seed);
                Err(SuiteError::device("injected", true))
            },
            || dummy_result(2.0),
        )
        .unwrap();
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[0], base.seed, "attempt 0 must run the plan as given");
        assert_eq!(seen.iter().collect::<std::collections::HashSet<_>>().len(), 3);
        assert!(r.recovery.cpu_fallback);
        assert_eq!(r.recovery.device_attempts, 3);
        assert_eq!(r.t0, 2.0);
    }

    #[test]
    fn unrecoverable_errors_abort_immediately() {
        let policy = RecoveryPolicy::default();
        let mut calls = 0;
        let err = run_with_recovery(
            &policy,
            None,
            |_, _| {
                calls += 1;
                Err(SuiteError::device("bad launch config", false))
            },
            || unreachable!("fallback must not mask bugs"),
        )
        .unwrap_err();
        assert_eq!(calls, 1);
        assert!(!err.is_recoverable());
    }

    #[test]
    fn device_lost_escapes_recovery_immediately() {
        // A crashed device must surface to the supervision layer — not be
        // retried on the same (dead) device, and not silently degrade to
        // the CPU fallback (the service decides what a degraded answer is).
        let policy = RecoveryPolicy::default();
        let mut calls = 0;
        let err = run_with_recovery(
            &policy,
            None,
            |_, _| {
                calls += 1;
                Err(SuiteError::device_lost("device lost: crash at launch 0"))
            },
            || unreachable!("a lost device must not reach the CPU fallback"),
        )
        .unwrap_err();
        assert_eq!(calls, 1, "no same-device re-attempts after a crash");
        assert!(matches!(err, SuiteError::DeviceLost { .. }), "got {err:?}");
    }

    #[test]
    fn lost_device_launch_maps_to_suite_device_lost() {
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        let buf = gpu.alloc::<i64>(1);
        // Horizon 1 pins the crash to launch index 0: the very first launch
        // observes the dead device, and launch_with_retry must not retry it
        // (DeviceLost is not transient).
        gpu.set_fault_plan(Some(
            FaultPlan::disabled().reseeded(1).with_worker_crash(1.0, 1),
        ));
        let kernel = AddOne { buf };
        let mut stats = RecoveryStats::default();
        let err = launch_with_retry(
            &mut gpu,
            &kernel,
            LaunchConfig::linear(1, 1),
            &RecoveryPolicy::default(),
            &mut stats,
        )
        .unwrap_err();
        assert!(matches!(err, LaunchError::DeviceLost { .. }), "{err}");
        assert_eq!(stats.launch_retries, 0, "dead devices are not retried in place");
        let suite = suite_device_error(&err);
        assert!(matches!(suite, SuiteError::DeviceLost { .. }));
        assert!(!suite.is_recoverable());
        assert!(suite.to_string().contains("device lost"));
    }

    #[test]
    fn fallback_disabled_returns_last_error() {
        let policy =
            RecoveryPolicy { max_device_attempts: 2, cpu_fallback: false, ..Default::default() };
        let err = run_with_recovery(
            &policy,
            None,
            |_, _| Err(SuiteError::corrupt("always")),
            || unreachable!(),
        )
        .unwrap_err();
        assert!(matches!(err, SuiteError::CorruptResult { .. }));
    }

    #[test]
    fn launch_retry_survives_transient_failures() {
        // Rate 0.5 with 16 retries per launch: a run of 17 consecutive
        // failures is essentially impossible, so every launch eventually
        // executes exactly once and the final memory matches a clean run.
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        let buf = gpu.alloc::<i64>(4);
        gpu.h2d(buf, &[1, 2, 3, 4]);
        gpu.set_fault_plan(Some(FaultPlan::with_rates(21, 0.5, 0.0, 0.0)));
        let policy = RecoveryPolicy { max_launch_retries: 16, ..Default::default() };
        let mut stats = RecoveryStats::default();
        let kernel = AddOne { buf };
        for _ in 0..20 {
            launch_with_retry(&mut gpu, &kernel, LaunchConfig::linear(1, 4), &policy, &mut stats)
                .unwrap();
        }
        assert!(stats.launch_retries > 0, "rate 0.5 over 20 launches must retry");
        assert_eq!(gpu.d2h(buf), vec![21, 22, 23, 24], "each launch executed exactly once");
    }

    struct AddOne {
        buf: Buf<i64>,
    }
    impl Kernel for AddOne {
        type Shared = ();
        type ThreadState = ();
        fn name(&self) -> &str {
            "add_one"
        }
        fn make_shared(&self, _b: usize) {}
        fn phase<C: cuda_sim::DeviceCtx>(
            &self,
            _p: usize,
            ctx: &mut C,
            _s: &mut (),
            _t: &mut (),
        ) {
            let gid = ctx.global_id();
            let v: i64 = ctx.read(self.buf, gid);
            ctx.write(self.buf, gid, v.wrapping_add(1));
        }
    }
}
