//! Cross-request batched SA launches: several solve requests fused into one
//! simulated-device run.
//!
//! Small-`n` service traffic is launch-overhead-bound: a generation's four
//! kernels cost ~5 µs of launch overhead each while their compute finishes
//! in well under a microsecond. Fusing `k` compatible requests into one grid
//! runs one *perturbation → fitness → acceptance → reduction* round per
//! generation for all of them, paying the overhead once instead of `k`
//! times.
//!
//! The contract is **outcome identity**: every request's best sequence,
//! objective and evaluation count are byte-identical to what its solo
//! [`run_gpu_sa`] run produces. That holds because each request keeps its
//! own XORWOW streams (seeded per request, per thread, exactly as solo),
//! its own uploaded problem and staged rates (per block segment), its own
//! iteratively-cooled temperature (applied per segment by the acceptance
//! kernel), and its own segment-local argmin. Only the launch/transfer
//! accounting — the modeled time — changes; results, metrics and the
//! per-request demultiplexing are derived from the same device state a solo
//! run would hold.
//!
//! Fusion preconditions (checked here, grouped by the caller): same problem
//! kind and job count, same iteration budget and grid geometry (they share
//! `params`), telemetry off, no fault plan. Incompatible groups are
//! rejected with a clear error so callers fall back to solo runs. The delta
//! evaluator is not fused — batched launches always score with the full
//! fitness kernel (the outcome is identical by the delta contract).

use crate::init::initial_ensemble;
use crate::kernels::{AcceptKernel, BatchFitnessKernel, PerturbKernel};
use crate::layout::ProblemDevice;
use crate::recovery::{suite_device_error, RecoveryStats};
use crate::sa_pipeline::{check_argmin_domain, run_gpu_sa, GpuRunResult, GpuSaParams};
use cdd_core::eval::evaluator_for;
use cdd_core::{Cost, Instance, JobSequence, SuiteError};
use cdd_meta::temperature::initial_temperature;
use cuda_sim::reduce::{unpack_argmin, SegmentedArgminKernel};
use cuda_sim::{Backend, ExecBackend, Gpu, LaunchConfig, NativeGpu, XorWow};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One request of a fused batch: the instance to solve and the master seed
/// its solo run would use.
#[derive(Debug, Clone)]
pub struct BatchEntry {
    /// Problem instance.
    pub instance: Instance,
    /// Master seed (drives T₀ sampling, the initial ensemble, and the
    /// per-thread XORWOW streams — exactly as [`GpuSaParams::seed`] does
    /// for a solo run).
    pub seed: u64,
}

/// Run `entries` as one fused device run. Returns one result per entry, in
/// order. A single entry delegates to the solo pipeline (with its full
/// recovery wrapper); multi-entry batches require the fusion preconditions
/// and run fault-free.
pub fn run_gpu_sa_batch(
    entries: &[BatchEntry],
    params: &GpuSaParams,
) -> Result<Vec<GpuRunResult>, SuiteError> {
    let Some(first) = entries.first() else {
        return Ok(Vec::new());
    };
    if entries.len() == 1 {
        let solo = GpuSaParams { seed: first.seed, ..params.clone() };
        return Ok(vec![run_gpu_sa(&first.instance, &solo)?]);
    }
    assert!(params.iterations >= 1, "need at least one generation");
    if params.fault.is_some() {
        return Err(SuiteError::rejected(
            "batched launches run fault-free; fault-injection runs must go solo",
        ));
    }
    if params.telemetry.enabled() {
        return Err(SuiteError::rejected(
            "batched launches do not carry telemetry; sampled runs must go solo",
        ));
    }
    let (kind, n) = (first.instance.kind(), first.instance.n());
    if !entries.iter().all(|e| e.instance.kind() == kind && e.instance.n() == n) {
        return Err(SuiteError::rejected(
            "fused requests must share problem kind and job count",
        ));
    }

    let k = entries.len();
    let ensemble = params.ensemble();
    // The packed argmin index is segment-local, so only the per-request
    // ensemble must fit the index field — but every instance's objective
    // bound must fit the value field.
    for e in entries {
        check_argmin_domain(&e.instance, ensemble)?;
    }

    // Host-side setup, replicated per request exactly as the solo pipeline
    // performs it: seed the host RNG, estimate T₀, then draw the initial
    // ensemble from the *same* stream. Byte-identical starting state.
    let mut evaluators = Vec::with_capacity(k);
    let mut t0s = Vec::with_capacity(k);
    let mut init_rows: Vec<Vec<u32>> = Vec::with_capacity(k);
    for e in entries {
        let mut host_rng = StdRng::seed_from_u64(e.seed);
        let evaluator = evaluator_for(&e.instance);
        let t0 = params.t0.unwrap_or_else(|| match params.init {
            crate::init::InitStrategy::Random => {
                initial_temperature(evaluator.as_ref(), params.t0_samples, &mut host_rng)
            }
            crate::init::InitStrategy::VShapedSpread => cdd_meta::initial_temperature_local(
                evaluator.as_ref(),
                &cdd_core::heuristics::v_shaped_sequence(&e.instance),
                params.pert,
                params.t0_samples.min(500),
                &mut host_rng,
            ),
        });
        t0s.push(t0);
        init_rows.push(initial_ensemble(&e.instance, ensemble, params.init, &mut host_rng));
        evaluators.push(evaluator);
    }

    match params.backend {
        Backend::Sim => batch_device_run::<Gpu>(entries, params, &evaluators, &t0s, init_rows),
        Backend::Native => {
            batch_device_run::<NativeGpu>(entries, params, &evaluators, &t0s, init_rows)
        }
    }
}

/// The device half of a fused batch run, on either execution backend: upload
/// every request, drive the four fused kernels per generation, demultiplex
/// and oracle-verify each request's winner.
fn batch_device_run<B: ExecBackend>(
    entries: &[BatchEntry],
    params: &GpuSaParams,
    evaluators: &[Box<dyn cdd_core::eval::SequenceEvaluator + Send + Sync>],
    t0s: &[f64],
    init_rows: Vec<Vec<u32>>,
) -> Result<Vec<GpuRunResult>, SuiteError> {
    let k = entries.len();
    let n = entries[0].instance.n();
    let ensemble = params.ensemble();
    let total = k * ensemble;
    let cfg = LaunchConfig::linear(k * params.blocks, params.block_size);
    let mut gpu = B::from_spec(params.device.clone());
    let mut stats = RecoveryStats { device_attempts: 1, ..RecoveryStats::default() };

    let probs: Vec<ProblemDevice> = entries
        .iter()
        .map(|e| ProblemDevice::upload(&mut gpu, &e.instance))
        .collect::<Result<_, _>>()
        .map_err(|e| suite_device_error(&e))?;

    // Fused device state: request r owns rows [r·ensemble, (r+1)·ensemble).
    let current = gpu.alloc::<u32>(total * n);
    let flat: Vec<u32> = init_rows.into_iter().flatten().collect();
    gpu.h2d(current, &flat);
    let candidate = gpu.alloc::<u32>(total * n);
    let energies = gpu.alloc::<i64>(total);
    let cand_energies = gpu.alloc::<i64>(total);
    let best_rows = gpu.alloc::<u32>(total * n);
    let best_energies = gpu.alloc::<i64>(total);
    gpu.h2d(best_energies, &vec![i64::MAX; total]);
    let global_bests = gpu.alloc::<i64>(k);
    gpu.h2d(global_bests, &vec![i64::MAX; k]);
    let rng_states = gpu.alloc::<u64>(total * 3);
    let words: Vec<u64> = entries
        .iter()
        .flat_map(|e| (0..ensemble).flat_map(move |t| XorWow::new(e.seed, t as u64).pack()))
        .collect();
    gpu.h2d(rng_states, &words);

    // Initial fitness of every request's starting ensemble, one launch.
    let fitness_current =
        BatchFitnessKernel::new(probs.clone(), current, energies, ensemble, params.blocks);
    gpu.launch_kernel(&fitness_current, cfg, &[]).map_err(|e| suite_device_error(&e))?;

    let perturb = PerturbKernel::new(current, candidate, rng_states, n, total, params.pert);
    let fitness =
        BatchFitnessKernel::new(probs, candidate, cand_energies, ensemble, params.blocks);
    let reduce =
        SegmentedArgminKernel { values: best_energies, out: global_bests, segment: ensemble };

    // Each request cools independently from its own T₀ — iterative
    // multiplication, bit-identical to the solo schedule.
    let mut temps = t0s.to_vec();
    for _gen in 0..params.iterations {
        gpu.launch_kernel(&perturb, cfg, &[]).map_err(|e| suite_device_error(&e))?;
        gpu.launch_kernel(&fitness, cfg, &[]).map_err(|e| suite_device_error(&e))?;
        let accept = AcceptKernel {
            current,
            candidate,
            energies,
            cand_energies,
            best_rows,
            best_energies,
            rng: rng_states,
            n,
            ensemble: total,
            temperature: 0.0,
            segment_temps: Some((ensemble, temps.clone())),
            telemetry: None,
            flags: None,
        };
        gpu.launch_kernel(&accept, cfg, &[]).map_err(|e| suite_device_error(&e))?;
        gpu.launch_kernel(&reduce, cfg, &[]).map_err(|e| suite_device_error(&e))?;
        for t in temps.iter_mut() {
            *t *= params.cooling_rate;
        }
    }

    // Demultiplex: per request, unpack its segment-local argmin, fetch the
    // winning row, and oracle-verify (host repair over the segment on
    // mismatch — cannot trigger fault-free, but the contract is uniform).
    let keys = gpu.d2h(global_bests);
    let mut results = Vec::with_capacity(k);
    for (r, key) in keys.into_iter().enumerate() {
        let (claimed, winner) = unpack_argmin(key);
        let eval = &evaluators[r];
        let outcome: Result<(JobSequence, Cost), SuiteError> = (|| {
            if winner < ensemble {
                let row = gpu.d2h_range(best_rows, (r * ensemble + winner) * n, n);
                if let Ok(seq) = JobSequence::from_vec(row) {
                    let oracle = eval.evaluate(seq.as_slice());
                    if oracle == claimed {
                        return Ok((seq, oracle));
                    }
                }
            }
            stats.oracle_rejections += 1;
            let all = gpu.d2h_range(best_rows, r * ensemble * n, ensemble * n);
            let mut best: Option<(JobSequence, Cost)> = None;
            for t in 0..ensemble {
                let Ok(seq) = JobSequence::from_vec(all[t * n..(t + 1) * n].to_vec()) else {
                    continue;
                };
                let obj = eval.evaluate(seq.as_slice());
                if best.as_ref().is_none_or(|(_, b)| obj < *b) {
                    best = Some((seq, obj));
                }
            }
            best.ok_or_else(|| {
                SuiteError::corrupt(format!(
                    "none of request {r}'s {ensemble} device rows is a valid permutation"
                ))
            })
        })();
        let (best, objective) = outcome?;
        results.push((best, objective));
    }

    // One profiler accounts for the fused run; modeled time is split evenly
    // across the requests that shared it (each report carries the *fused*
    // launch count — k requests rode the same 1 + 4·iterations launches).
    let share = 1.0 / k as f64;
    let summary = format!("batched×{k}: {}", gpu.profiler_summary());
    Ok(results
        .into_iter()
        .enumerate()
        .map(|(r, (best, objective))| GpuRunResult {
            best,
            objective,
            evaluations: ensemble as u64 * (params.iterations + 1),
            t0: t0s[r],
            modeled_seconds: gpu.modeled_total_seconds() * share,
            kernel_seconds: gpu.modeled_kernel_seconds() * share,
            transfer_seconds: gpu.modeled_transfer_seconds() * share,
            kernel_launches: gpu.kernel_launches(),
            profiler_summary: summary.clone(),
            timeline: Vec::new(),
            recovery: stats,
            convergence: None,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn params(iterations: u64) -> GpuSaParams {
        GpuSaParams { blocks: 2, block_size: 32, iterations, ..Default::default() }
    }

    fn random_instance(rng: &mut StdRng, n: usize) -> Instance {
        let p: Vec<i64> = (0..n).map(|_| rng.gen_range(1..=20)).collect();
        let a: Vec<i64> = (0..n).map(|_| rng.gen_range(1..=10)).collect();
        let b: Vec<i64> = (0..n).map(|_| rng.gen_range(1..=15)).collect();
        let d = (p.iter().sum::<i64>() as f64 * 0.55) as i64;
        Instance::cdd_from_arrays(&p, &a, &b, d).unwrap()
    }

    #[test]
    fn batched_outcomes_are_byte_identical_to_solo_runs() {
        let mut rng = StdRng::seed_from_u64(2024);
        let entries: Vec<BatchEntry> = (0..3)
            .map(|i| BatchEntry { instance: random_instance(&mut rng, 14), seed: 100 + i })
            .collect();
        let p = params(120);
        let batched = run_gpu_sa_batch(&entries, &p).unwrap();
        assert_eq!(batched.len(), 3);
        for (e, b) in entries.iter().zip(&batched) {
            let solo = run_gpu_sa(&e.instance, &GpuSaParams { seed: e.seed, ..p.clone() }).unwrap();
            assert_eq!(b.best, solo.best, "seed {}", e.seed);
            assert_eq!(b.objective, solo.objective);
            assert_eq!(b.evaluations, solo.evaluations);
            assert_eq!(b.t0, solo.t0, "host-side T₀ must replicate bit-for-bit");
        }
    }

    #[test]
    fn fused_run_is_faster_than_the_sum_of_solo_runs() {
        let mut rng = StdRng::seed_from_u64(9);
        let entries: Vec<BatchEntry> = (0..4)
            .map(|i| BatchEntry { instance: random_instance(&mut rng, 10), seed: i })
            .collect();
        let p = params(80);
        let batched = run_gpu_sa_batch(&entries, &p).unwrap();
        let fused_total: f64 = batched.iter().map(|b| b.modeled_seconds).sum();
        let solo_total: f64 = entries
            .iter()
            .map(|e| {
                run_gpu_sa(&e.instance, &GpuSaParams { seed: e.seed, ..p.clone() })
                    .unwrap()
                    .modeled_seconds
            })
            .sum();
        assert!(
            fused_total < solo_total * 0.5,
            "fusion should at least halve launch-overhead-bound time: fused {fused_total} vs \
             solo {solo_total}"
        );
    }

    #[test]
    fn single_entry_delegates_to_the_solo_pipeline() {
        let inst = Instance::paper_example_cdd();
        let p = params(60);
        let batched = run_gpu_sa_batch(
            &[BatchEntry { instance: inst.clone(), seed: 5 }],
            &p,
        )
        .unwrap();
        let solo = run_gpu_sa(&inst, &GpuSaParams { seed: 5, ..p }).unwrap();
        assert_eq!(batched[0].best, solo.best);
        assert_eq!(batched[0].objective, solo.objective);
        assert_eq!(batched[0].modeled_seconds, solo.modeled_seconds);
        assert_eq!(batched[0].kernel_launches, solo.kernel_launches);
    }

    #[test]
    fn incompatible_batches_are_rejected() {
        let p = params(10);
        let mixed = [
            BatchEntry { instance: Instance::paper_example_cdd(), seed: 1 },
            BatchEntry { instance: Instance::paper_example_ucddcp(), seed: 2 },
        ];
        let err = run_gpu_sa_batch(&mixed, &p).unwrap_err();
        assert!(format!("{err}").contains("share problem kind"), "{err}");

        let faulted = GpuSaParams {
            fault: Some(cuda_sim::FaultPlan::with_rates(1, 0.05, 0.01, 0.01)),
            ..params(10)
        };
        let same = [
            BatchEntry { instance: Instance::paper_example_cdd(), seed: 1 },
            BatchEntry { instance: Instance::paper_example_cdd(), seed: 2 },
        ];
        let err = run_gpu_sa_batch(&same, &faulted).unwrap_err();
        assert!(format!("{err}").contains("fault"), "{err}");
    }

    #[test]
    fn empty_batch_returns_no_results() {
        assert!(run_gpu_sa_batch(&[], &params(10)).unwrap().is_empty());
    }

    #[test]
    fn ucddcp_batches_fuse_too() {
        let inst = Instance::paper_example_ucddcp();
        let entries: Vec<BatchEntry> =
            (0..2).map(|i| BatchEntry { instance: inst.clone(), seed: 40 + i }).collect();
        let p = params(80);
        let batched = run_gpu_sa_batch(&entries, &p).unwrap();
        for (e, b) in entries.iter().zip(&batched) {
            let solo = run_gpu_sa(&e.instance, &GpuSaParams { seed: e.seed, ..p.clone() }).unwrap();
            assert_eq!(b.best, solo.best);
            assert_eq!(b.objective, solo.objective);
        }
    }
}
