//! The full GPU **asynchronous parallel SA** pipeline (paper Figs. 9–10).
//!
//! Host side: estimate `T₀` (stddev of 5000 random fitness values), generate
//! the initial ensemble and RNG states, copy everything to the device, then
//! per generation launch *perturbation → fitness → acceptance → reduction*
//! and cool the temperature. At the end, copy back the packed global best
//! and the winning thread's personal-best row.
//!
//! All reported times are the simulator's modeled device times, including
//! every host↔device transfer — matching the paper's accounting ("the total
//! runtime of our parallel algorithms incorporating all the memory transfers
//! between the host and the device").

use crate::init::{initial_ensemble, InitStrategy};
use crate::kernels::fitness::CORRUPT_ENERGY;
use crate::kernels::{
    AcceptKernel, DeltaCacheBufs, DeltaFitnessKernel, FitnessKernel, PerturbKernel, SaProbe,
};
use crate::layout::ProblemDevice;
use crate::recovery::{
    launch_with_retry, merge_faults, run_with_recovery, suite_device_error, verified_best,
    RecoveryPolicy, RecoveryStats,
};
use crate::trajectory::ConvergenceTrace;
use cdd_core::eval::{evaluator_for, SequenceEvaluator};
use cdd_core::{Cost, Instance, JobSequence, SuiteError};
use cdd_meta::temperature::initial_temperature;
use cdd_meta::{AsyncEnsemble, Cooling, SaParams};
use cuda_sim::reduce::{unpack_argmin, AtomicArgminKernel};
use cuda_sim::{
    Backend, DeviceSpec, ExecBackend, FaultPlan, Gpu, LaunchConfig, NativeGpu, TelemetryConfig,
    TelemetryRing, TimelineEvent, XorWow,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Native-backend admission check, shared by all four pipelines: fault
/// injection and convergence telemetry are sim-only capabilities, so a
/// request that needs either must route to [`Backend::Sim`] and is rejected
/// — never silently degraded — when aimed at the native backend
/// (DESIGN.md §16).
pub(crate) fn check_native_capabilities(
    backend: Backend,
    fault: Option<&FaultPlan>,
    telemetry: &TelemetryConfig,
) -> Result<(), SuiteError> {
    if backend != Backend::Native {
        return Ok(());
    }
    if fault.is_some_and(|p| p.is_active()) {
        return Err(SuiteError::rejected(
            "fault injection is sim-only: route fault-plan runs to backend=sim",
        ));
    }
    if telemetry.enabled() {
        return Err(SuiteError::rejected(
            "convergence telemetry is sim-only: route telemetry runs to backend=sim",
        ));
    }
    Ok(())
}

/// Validate, before any kernel runs, that every objective this instance can
/// produce — plus the fault-injection sentinel energy — fits the packed
/// argmin encoding, and that the ensemble fits its index field. The bound is
/// a deliberate over-approximation (every job maximally early *and* late);
/// see `cuda_sim::reduce::argmin_domain_check`.
pub(crate) fn check_argmin_domain(inst: &Instance, ensemble: usize) -> Result<(), SuiteError> {
    let horizon = inst.due_date() as i128 + inst.total_processing() as i128;
    let bound: i128 = inst
        .jobs()
        .iter()
        .map(|j| {
            let coeff = j.earliness_penalty.max(j.tardiness_penalty).max(j.compression_penalty);
            coeff as i128 * horizon
        })
        .sum();
    cuda_sim::reduce::argmin_domain_check(bound.max(CORRUPT_ENERGY as i128), ensemble)
        .map_err(SuiteError::rejected)
}

/// Configuration of the incremental (delta) candidate-evaluation path.
///
/// When enabled, the SA pipelines score candidates with the
/// [`DeltaFitnessKernel`] — O(pert·log n) from a resident per-chain cache —
/// instead of re-running the full O(n) fitness kernel. The *outcome set*
/// (best sequence, objective, evaluation and launch counts, RNG streams) is
/// bit-identical either way; only the modeled device time changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaConfig {
    /// Score candidates incrementally.
    pub enabled: bool,
    /// Force a full cache rebuild on every generation `g` with
    /// `g % resync_every == 0` (0 disables forcing). Exact arithmetic needs
    /// no re-sync; the cadence bounds how long fault-injected bit flips in
    /// the resident cache can survive.
    pub resync_every: u64,
}

impl Default for DeltaConfig {
    fn default() -> Self {
        DeltaConfig { enabled: false, resync_every: 64 }
    }
}

/// Parameters of one GPU SA run.
#[derive(Debug, Clone)]
pub struct GpuSaParams {
    /// Grid size (the paper fixes 4 blocks).
    pub blocks: usize,
    /// Block size (the paper found 192 best on its device).
    pub block_size: usize,
    /// Generations (1000 or 5000 in the paper).
    pub iterations: u64,
    /// Perturbation size `Pert`.
    pub pert: usize,
    /// Exponential cooling factor μ.
    pub cooling_rate: f64,
    /// Initial temperature; `None` applies the stddev-of-5000-samples rule.
    pub t0: Option<f64>,
    /// Samples for the `T₀` estimate.
    pub t0_samples: usize,
    /// Master seed (thread `t` uses XORWOW stream `t`).
    pub seed: u64,
    /// Starting-ensemble strategy (default: V-shaped heuristic spread).
    pub init: InitStrategy,
    /// Simulated device.
    pub device: DeviceSpec,
    /// Optional fault-injection plan installed on the simulated device.
    pub fault: Option<FaultPlan>,
    /// Retry / re-attempt / fallback policy.
    pub recovery: RecoveryPolicy,
    /// Convergence-telemetry policy (disabled by default; sampling changes
    /// no result — see `cuda_sim::telemetry`).
    pub telemetry: TelemetryConfig,
    /// Incremental candidate-evaluation policy (off by default; enabling it
    /// changes modeled time only, never the outcome).
    pub delta: DeltaConfig,
    /// Execution backend: the simulator (default) or the native host path.
    /// Both produce byte-identical [`GpuRunResult`]s for clean runs; fault
    /// injection and telemetry are sim-only and are rejected on native.
    pub backend: Backend,
}

impl Default for GpuSaParams {
    fn default() -> Self {
        GpuSaParams {
            blocks: 4,
            block_size: 192,
            iterations: 1000,
            pert: 4,
            cooling_rate: 0.88,
            t0: None,
            t0_samples: 5000,
            seed: 2016,
            init: InitStrategy::default(),
            device: DeviceSpec::gt560m(),
            fault: None,
            recovery: RecoveryPolicy::default(),
            telemetry: TelemetryConfig::disabled(),
            delta: DeltaConfig::default(),
            backend: Backend::default(),
        }
    }
}

impl GpuSaParams {
    /// The paper's `SA₁₀₀₀` configuration (768 threads = 4 × 192).
    pub fn paper_1000() -> Self {
        Self::default()
    }

    /// The paper's `SA₅₀₀₀` configuration.
    pub fn paper_5000() -> Self {
        GpuSaParams { iterations: 5000, ..Self::default() }
    }

    /// Ensemble size (total threads).
    pub fn ensemble(&self) -> usize {
        self.blocks * self.block_size
    }
}

/// Result of a GPU pipeline run (SA or DPSO).
#[derive(Debug, Clone)]
pub struct GpuRunResult {
    /// Best sequence found by the ensemble.
    pub best: JobSequence,
    /// Its objective value.
    pub objective: Cost,
    /// Fitness evaluations across all threads.
    pub evaluations: u64,
    /// Initial temperature used (SA; 0 for DPSO).
    pub t0: f64,
    /// Total modeled device time (kernels + transfers), seconds.
    pub modeled_seconds: f64,
    /// Modeled kernel time, seconds.
    pub kernel_seconds: f64,
    /// Modeled transfer time, seconds.
    pub transfer_seconds: f64,
    /// Kernel launches performed.
    pub kernel_launches: usize,
    /// Per-kernel profiler summary (the Fig. 9/10 timeline evidence).
    pub profiler_summary: String,
    /// The raw profiler timeline of the winning device attempt: kernels,
    /// transfers, and the pipeline's per-generation spans. Consumed by the
    /// trace exporter (`cdd_metrics::trace`); empty for CPU fallbacks.
    pub timeline: Vec<TimelineEvent>,
    /// What the resilience layer did (retries, oracle repairs, fallback).
    pub recovery: RecoveryStats,
    /// Decoded search trajectory of the winning device attempt; `None` when
    /// telemetry is disabled or the run fell back to the CPU.
    pub convergence: Option<ConvergenceTrace>,
}

/// Run the paper's parallel asynchronous SA on the simulated GPU.
///
/// The run is wrapped in the resilience layer of [`crate::recovery`]:
/// transient launch failures are retried in place, a failed or
/// oracle-rejected device run is re-attempted (with a reseeded fault plan),
/// and after [`RecoveryPolicy::max_device_attempts`] failures the CPU
/// asynchronous ensemble produces the result. The returned objective is
/// always verified against the exact CPU evaluator.
pub fn run_gpu_sa(inst: &Instance, params: &GpuSaParams) -> Result<GpuRunResult, SuiteError> {
    assert!(params.iterations >= 1, "need at least one generation");
    check_argmin_domain(inst, params.ensemble())?;
    check_native_capabilities(params.backend, params.fault.as_ref(), &params.telemetry)?;

    // Host-side setup: T₀ rule and initial ensemble. Randomly initialized
    // chains use the paper's global rule (stddev of `t0_samples` random
    // fitnesses); heuristically seeded chains calibrate to the local move
    // scale so the good start survives the hot phase (see
    // `cdd_meta::temperature::initial_temperature_local`).
    let mut host_rng = StdRng::seed_from_u64(params.seed);
    let evaluator = evaluator_for(inst);
    let t0 = params.t0.unwrap_or_else(|| match params.init {
        InitStrategy::Random => {
            initial_temperature(evaluator.as_ref(), params.t0_samples, &mut host_rng)
        }
        InitStrategy::VShapedSpread => cdd_meta::initial_temperature_local(
            evaluator.as_ref(),
            &cdd_core::heuristics::v_shaped_sequence(inst),
            params.pert,
            params.t0_samples.min(500),
            &mut host_rng,
        ),
    });

    match params.backend {
        Backend::Sim => run_with_recovery(
            &params.recovery,
            params.fault.as_ref(),
            |plan, stats| sa_attempt::<Gpu>(inst, params, &*evaluator, t0, &host_rng, plan, stats),
            || cpu_fallback_sa(params, &*evaluator, t0, params.iterations),
        ),
        Backend::Native => run_with_recovery(
            &params.recovery,
            params.fault.as_ref(),
            |plan, stats| {
                sa_attempt::<NativeGpu>(inst, params, &*evaluator, t0, &host_rng, plan, stats)
            },
            || cpu_fallback_sa(params, &*evaluator, t0, params.iterations),
        ),
    }
}

/// The candidate-scoring kernel of a pipeline run: the full O(n) fitness
/// kernel, or the incremental delta kernel when [`DeltaConfig`] enables it.
pub(crate) enum CandidateScorer {
    /// Full re-evaluation (the paper's kernel).
    Full(FitnessKernel),
    /// Incremental evaluation from the resident cache.
    Delta(DeltaFitnessKernel),
}

/// One complete device run of the asynchronous SA pipeline, on either
/// execution backend (the result is byte-identical across backends for a
/// clean run — the cross-backend parity contract).
fn sa_attempt<B: ExecBackend>(
    inst: &Instance,
    params: &GpuSaParams,
    evaluator: &dyn SequenceEvaluator,
    t0: f64,
    host_rng: &StdRng,
    plan: Option<FaultPlan>,
    stats: &mut RecoveryStats,
) -> Result<GpuRunResult, SuiteError> {
    let n = inst.n();
    let ensemble = params.ensemble();
    let cfg = LaunchConfig::linear(params.blocks, params.block_size);
    // Each attempt restarts from the same host RNG state, so a clean run is
    // byte-identical to the pre-recovery pipeline.
    let mut host_rng = host_rng.clone();
    let policy = &params.recovery;

    let mut gpu = B::from_spec(params.device.clone());
    gpu.set_fault_plan(plan);

    // Telemetry state lives outside the attempt closure so the ring can be
    // drained from `&gpu` once the closure's mutable borrow ends.
    let telem_cap = params.telemetry.effective_capacity(params.iterations.saturating_sub(1));
    let mut ring: Option<TelemetryRing> = None;
    let mut sample_headers: Vec<(u64, f64)> = Vec::new();

    let outcome = (|| -> Result<(JobSequence, Cost), SuiteError> {
        let prob = ProblemDevice::upload(&mut gpu, inst).map_err(|e| suite_device_error(&e))?;

        // Fig. 9: initial sequences + cuRAND states host → device.
        let current = gpu.alloc::<u32>(ensemble * n);
        let flat = initial_ensemble(inst, ensemble, params.init, &mut host_rng);
        gpu.h2d(current, &flat);
        let candidate = gpu.alloc::<u32>(ensemble * n);
        let energies = gpu.alloc::<i64>(ensemble);
        let cand_energies = gpu.alloc::<i64>(ensemble);
        let best_rows = gpu.alloc::<u32>(ensemble * n);
        let best_energies = gpu.alloc::<i64>(ensemble);
        gpu.h2d(best_energies, &vec![i64::MAX; ensemble]);
        let global_best = gpu.alloc::<i64>(1);
        gpu.h2d(global_best, &[i64::MAX]);
        let rng_states = gpu.alloc::<u64>(ensemble * 3);
        let words: Vec<u64> =
            (0..ensemble).flat_map(|t| XorWow::new(params.seed, t as u64).pack()).collect();
        gpu.h2d(rng_states, &words);

        // Delta-evaluation state: the move descriptor, per-chain dirty
        // flags (seeded to 1 so every chain rebuilds its cache on the first
        // generation), and the resident prefix/suffix cache. The path needs
        // at least a 2-position perturbation to describe a move.
        let pert_eff = params.pert.min(n);
        let delta_on = params.delta.enabled && pert_eff >= 2;
        let delta_bufs = if delta_on {
            let moves = gpu.alloc::<u32>(ensemble * pert_eff);
            let flags = gpu.alloc::<u32>(ensemble);
            gpu.h2d(flags, &vec![1u32; ensemble]);
            Some((moves, flags, DeltaCacheBufs::alloc(&mut gpu, ensemble, n)))
        } else {
            None
        };

        // Telemetry ring last, after every algorithm buffer, so buffer
        // handles match the telemetry-off run exactly (alloc itself records
        // no profiler event and models no cost).
        if params.telemetry.enabled() {
            ring = Some(TelemetryRing::alloc(&mut gpu, ensemble, telem_cap));
        }

        // Initial fitness of the starting ensemble.
        let fitness_current = FitnessKernel::new(prob, current, energies, ensemble, params.blocks);
        launch_with_retry(&mut gpu, &fitness_current, cfg, policy, stats)
            .map_err(|e| suite_device_error(&e))?;

        let mut perturb =
            PerturbKernel::new(current, candidate, rng_states, n, ensemble, params.pert);
        if let Some((moves, _, _)) = delta_bufs {
            perturb.moves = Some(moves);
        }
        let scorer = match delta_bufs {
            Some((moves, flags, cache)) => CandidateScorer::Delta(DeltaFitnessKernel::new(
                prob,
                current,
                candidate,
                moves,
                flags,
                cand_energies,
                cache,
                ensemble,
                params.blocks,
                pert_eff,
                params.delta.resync_every,
            )),
            None => CandidateScorer::Full(FitnessKernel::new(
                prob,
                candidate,
                cand_energies,
                ensemble,
                params.blocks,
            )),
        };
        let reduce = AtomicArgminKernel { values: best_energies, out: global_best };

        let mut temperature = t0;
        for gen in 0..params.iterations {
            // Span metadata is attached whether or not telemetry samples
            // this generation, so the timeline is stride-independent.
            gpu.span_begin_args(
                "sa-generation",
                vec![
                    ("gen".to_string(), gen.to_string()),
                    ("temperature".to_string(), format!("{temperature:.6e}")),
                ],
            );
            let slot = ring.and_then(|_| params.telemetry.slot_for(gen, telem_cap));
            if slot.is_some() {
                sample_headers.push((gen, temperature));
            }
            let gen_result = (|gpu: &mut B| -> Result<(), SuiteError> {
                launch_with_retry(gpu, &perturb, cfg, policy, stats)
                    .map_err(|e| suite_device_error(&e))?;
                match &scorer {
                    CandidateScorer::Full(k) => {
                        launch_with_retry(gpu, k, cfg, policy, stats)
                            .map_err(|e| suite_device_error(&e))?;
                    }
                    CandidateScorer::Delta(k) => {
                        k.set_generation(gen);
                        launch_with_retry(gpu, k, cfg, policy, stats)
                            .map_err(|e| suite_device_error(&e))?;
                    }
                }
                let accept = AcceptKernel {
                    current,
                    candidate,
                    energies,
                    cand_energies,
                    best_rows,
                    best_energies,
                    rng: rng_states,
                    n,
                    ensemble,
                    temperature,
                    segment_temps: None,
                    telemetry: ring.map(|r| SaProbe { ring: r, slot }),
                    flags: delta_bufs.map(|(_, f, _)| f),
                };
                launch_with_retry(gpu, &accept, cfg, policy, stats)
                    .map_err(|e| suite_device_error(&e))?;
                launch_with_retry(gpu, &reduce, cfg, policy, stats)
                    .map_err(|e| suite_device_error(&e))?;
                Ok(())
            })(&mut gpu);
            gpu.span_end("sa-generation");
            gen_result?;
            temperature *= params.cooling_rate;
        }

        // Fig. 9: global best (and the winning row) device → host, oracle-
        // verified (a corrupted reduction is repaired on the host).
        let key = gpu.d2h(global_best)[0];
        let (claimed, winner) = unpack_argmin(key);
        verified_best(&mut gpu, best_rows, n, ensemble, winner, claimed, evaluator, stats)
    })();

    merge_faults(&mut stats.faults, gpu.fault_stats());
    let (best, objective) = outcome?;
    let convergence = ring.map(|r| {
        ConvergenceTrace::from_ring("sa", params.telemetry.stride, 1, &sample_headers, &r, &gpu)
    });
    Ok(GpuRunResult {
        best,
        objective,
        evaluations: ensemble as u64 * (params.iterations + 1),
        t0,
        modeled_seconds: gpu.modeled_total_seconds(),
        kernel_seconds: gpu.modeled_kernel_seconds(),
        transfer_seconds: gpu.modeled_transfer_seconds(),
        kernel_launches: gpu.kernel_launches(),
        profiler_summary: gpu.profiler_summary(),
        timeline: gpu.timeline_events(),
        recovery: RecoveryStats::default(),
        convergence,
    })
}

/// CPU degradation target for the SA pipelines: the asynchronous CPU
/// ensemble (`cdd-meta`) at the same chain count, iteration budget, T₀ and
/// cooling schedule. Used by both the async and sync GPU variants.
pub(crate) fn cpu_fallback_sa(
    params: &GpuSaParams,
    evaluator: &dyn SequenceEvaluator,
    t0: f64,
    iterations: u64,
) -> GpuRunResult {
    let sa = SaParams {
        iterations,
        t0: Some(t0),
        cooling: Cooling::Exponential { rate: params.cooling_rate },
        pert: params.pert,
        t0_samples: params.t0_samples,
    };
    let m = AsyncEnsemble::new(evaluator, params.ensemble(), sa).run(params.seed);
    GpuRunResult {
        best: m.best,
        objective: m.objective,
        evaluations: m.evaluations,
        t0,
        modeled_seconds: 0.0,
        kernel_seconds: 0.0,
        transfer_seconds: 0.0,
        kernel_launches: 0,
        profiler_summary: "cpu-fallback: asynchronous CPU ensemble".into(),
        timeline: Vec::new(),
        recovery: RecoveryStats::default(),
        convergence: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdd_core::exact::best_sequence_bruteforce;

    fn small_params(iterations: u64) -> GpuSaParams {
        GpuSaParams { blocks: 2, block_size: 32, iterations, ..Default::default() }
    }

    #[test]
    fn gpu_sa_finds_paper_example_optimum() {
        let inst = Instance::paper_example_cdd();
        let (_, optimum) = best_sequence_bruteforce(&inst);
        let r = run_gpu_sa(&inst, &small_params(300)).unwrap();
        assert_eq!(r.objective, optimum);
        assert!(r.best.is_valid_permutation());
    }

    #[test]
    fn gpu_sa_solves_ucddcp_example() {
        let inst = Instance::paper_example_ucddcp();
        let (_, optimum) = best_sequence_bruteforce(&inst);
        let r = run_gpu_sa(&inst, &small_params(300)).unwrap();
        assert_eq!(r.objective, optimum);
    }

    #[test]
    fn result_is_deterministic_per_seed() {
        let inst = Instance::paper_example_cdd();
        let a = run_gpu_sa(&inst, &small_params(100)).unwrap();
        let b = run_gpu_sa(&inst, &small_params(100)).unwrap();
        assert_eq!(a.objective, b.objective);
        assert_eq!(a.best, b.best);
        assert_eq!(a.modeled_seconds, b.modeled_seconds);
    }

    #[test]
    fn timeline_matches_four_kernels_per_generation() {
        let inst = Instance::paper_example_cdd();
        let iters = 50;
        let r = run_gpu_sa(&inst, &small_params(iters)).unwrap();
        // 1 initial fitness + 4 kernels × generations.
        assert_eq!(r.kernel_launches as u64, 1 + 4 * iters);
        assert!(r.modeled_seconds > 0.0);
        assert!(r.kernel_seconds > 0.0);
        assert!(r.transfer_seconds > 0.0);
        assert!(r.profiler_summary.contains("fitness"));
        assert!(r.profiler_summary.contains("perturbation"));
        assert!(r.profiler_summary.contains("acceptance"));
        assert!(r.profiler_summary.contains("reduce_atomic_argmin"));
    }

    #[test]
    fn timeline_carries_one_span_per_generation() {
        let inst = Instance::paper_example_cdd();
        let iters = 20;
        let r = run_gpu_sa(&inst, &small_params(iters)).unwrap();
        let begins = r
            .timeline
            .iter()
            .filter(
                |e| matches!(e, TimelineEvent::SpanBegin { name, .. } if name == "sa-generation"),
            )
            .count();
        let ends = r
            .timeline
            .iter()
            .filter(|e| matches!(e, TimelineEvent::SpanEnd { name } if name == "sa-generation"))
            .count();
        assert_eq!(begins as u64, iters);
        assert_eq!(ends as u64, iters, "every span closes");
        let kernels =
            r.timeline.iter().filter(|e| matches!(e, TimelineEvent::Kernel { .. })).count();
        assert_eq!(kernels, r.kernel_launches, "timeline and counters agree");
    }

    #[test]
    fn spans_carry_generation_and_temperature_args() {
        let inst = Instance::paper_example_cdd();
        let r = run_gpu_sa(&inst, &small_params(3)).unwrap();
        let args: Vec<_> = r
            .timeline
            .iter()
            .filter_map(|e| match e {
                TimelineEvent::SpanBegin { name, args } if name == "sa-generation" => Some(args),
                _ => None,
            })
            .collect();
        assert_eq!(args.len(), 3);
        assert_eq!(args[0][0], ("gen".to_string(), "0".to_string()));
        assert_eq!(args[2][0], ("gen".to_string(), "2".to_string()));
        for a in &args {
            assert_eq!(a[1].0, "temperature");
            assert!(a[1].1.parse::<f64>().unwrap() > 0.0);
        }
    }

    #[test]
    fn telemetry_records_a_monotone_best_curve() {
        let inst = Instance::paper_example_cdd();
        let iters = 60;
        let p = GpuSaParams { telemetry: TelemetryConfig::every(5), ..small_params(iters) };
        let r = run_gpu_sa(&inst, &p).unwrap();
        let trace = r.convergence.expect("telemetry was on");
        assert_eq!(trace.algorithm, "sa");
        assert_eq!(trace.chains, 64);
        assert_eq!(trace.samples.len(), 12, "gens 0, 5, …, 55");
        assert_eq!(trace.samples[0].gen, 0);
        assert_eq!(trace.samples[11].gen, 55);
        let curve = trace.ensemble_best_curve();
        assert!(curve.windows(2).all(|w| w[1].1 <= w[0].1), "best-so-far never worsens");
        // Gens 56–59 run after the last sample, so the curve can only sit at
        // or above the final (oracle-verified) objective.
        assert!(curve.last().unwrap().1 >= r.objective);
        // Counters saw every generation, not just sampled ones.
        assert!(trace.counters.iter().any(|&c| c > 0));
        assert!(trace.counters.iter().all(|&c| c <= iters as i64));
    }

    #[test]
    fn telemetry_does_not_perturb_the_search() {
        let inst = Instance::paper_example_cdd();
        let base = run_gpu_sa(&inst, &small_params(40)).unwrap();
        let p = GpuSaParams { telemetry: TelemetryConfig::every(1), ..small_params(40) };
        let on = run_gpu_sa(&inst, &p).unwrap();
        assert_eq!(on.best, base.best);
        assert_eq!(on.objective, base.objective);
        assert_eq!(on.modeled_seconds, base.modeled_seconds);
        assert_eq!(on.timeline, base.timeline, "timelines byte-identical");
        assert!(base.convergence.is_none());
    }

    #[test]
    fn delta_eval_outcome_matches_full_eval_exactly() {
        // The delta path must be outcome-identical to full evaluation: same
        // best row, objective, evaluation and launch counts — only modeled
        // time may (and should) differ.
        for inst in [Instance::paper_example_cdd(), Instance::paper_example_ucddcp()] {
            let base = run_gpu_sa(&inst, &small_params(120)).unwrap();
            let p = GpuSaParams {
                delta: DeltaConfig { enabled: true, resync_every: 16 },
                ..small_params(120)
            };
            let d = run_gpu_sa(&inst, &p).unwrap();
            assert_eq!(d.best, base.best, "{:?}", inst.kind());
            assert_eq!(d.objective, base.objective);
            assert_eq!(d.evaluations, base.evaluations);
            assert_eq!(d.kernel_launches, base.kernel_launches);
        }
    }

    #[test]
    fn delta_eval_overhead_is_bounded_on_hot_ensembles() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(5);
        let p: Vec<i64> = (0..48).map(|_| rng.gen_range(1..=20)).collect();
        let a: Vec<i64> = (0..48).map(|_| rng.gen_range(1..=10)).collect();
        let b: Vec<i64> = (0..48).map(|_| rng.gen_range(1..=15)).collect();
        let d = (p.iter().sum::<i64>() as f64 * 0.5) as i64;
        let inst = Instance::cdd_from_arrays(&p, &a, &b, d).unwrap();
        // A per-thread-chain ensemble keeps accepting somewhere in every
        // warp on realistic horizons (plateau moves pass metropolis at any
        // temperature), and a warp pays the lane-max under lockstep SIMT —
        // so the pipeline-level contract on a *hot* ensemble is "delta never
        // costs more than ~1% over full evaluation", not a strict win. The
        // strict win is kernel-level, on clean warps: see
        // `delta_fitness::tests::larger_instance_matches_and_is_cheaper_in_steady_state`
        // and DESIGN.md §14.
        let base = run_gpu_sa(&inst, &small_params(300)).unwrap();
        let dp = GpuSaParams {
            delta: DeltaConfig { enabled: true, ..DeltaConfig::default() },
            ..small_params(300)
        };
        let delta = run_gpu_sa(&inst, &dp).unwrap();
        assert_eq!(delta.objective, base.objective);
        assert_eq!(delta.best, base.best);
        assert!(
            delta.kernel_seconds <= base.kernel_seconds * 1.01,
            "delta ({}) must stay within 1% of full ({}) on n=48",
            delta.kernel_seconds,
            base.kernel_seconds
        );
    }

    #[test]
    fn delta_eval_survives_fault_injection_deterministically() {
        // Flips can corrupt the resident cache; the re-sync cadence and the
        // oracle verification must still deliver an exact, repeatable result.
        let inst = Instance::paper_example_cdd();
        let p = GpuSaParams {
            fault: Some(cuda_sim::FaultPlan::with_rates(41, 0.03, 0.01, 0.01)),
            delta: DeltaConfig { enabled: true, resync_every: 8 },
            ..small_params(120)
        };
        let a = run_gpu_sa(&inst, &p).unwrap();
        let b = run_gpu_sa(&inst, &p).unwrap();
        assert_eq!(a.objective, b.objective);
        assert_eq!(a.best, b.best);
        assert_eq!(a.recovery, b.recovery);
        let eval = evaluator_for(&inst);
        assert_eq!(eval.evaluate(a.best.as_slice()), a.objective, "oracle must confirm");
    }

    #[test]
    fn oversized_ensemble_is_rejected_at_setup() {
        let inst = Instance::paper_example_cdd();
        let p = GpuSaParams { blocks: 1 << 15, block_size: 64, ..small_params(1) };
        let err = run_gpu_sa(&inst, &p).unwrap_err();
        assert!(format!("{err}").contains("ensemble too large"), "{err}");
    }

    #[test]
    fn five_x_iterations_cost_about_five_x_modeled_time() {
        // The paper: "increasing the number of generations by a factor of
        // five also increases the runtime by a factor about five".
        let inst = Instance::paper_example_cdd();
        let r1 = run_gpu_sa(&inst, &small_params(100)).unwrap();
        let r5 = run_gpu_sa(&inst, &small_params(500)).unwrap();
        let ratio = r5.kernel_seconds / r1.kernel_seconds;
        assert!((4.0..6.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn evaluations_counted_across_ensemble() {
        let inst = Instance::paper_example_cdd();
        let r = run_gpu_sa(&inst, &small_params(10)).unwrap();
        assert_eq!(r.evaluations, 64 * 11);
    }

    #[test]
    fn clean_run_reports_empty_recovery() {
        let inst = Instance::paper_example_cdd();
        let r = run_gpu_sa(&inst, &small_params(20)).unwrap();
        assert_eq!(r.recovery.device_attempts, 1);
        assert_eq!(r.recovery.launch_retries, 0);
        assert_eq!(r.recovery.oracle_rejections, 0);
        assert!(!r.recovery.cpu_fallback);
        assert_eq!(r.recovery.faults.launches_attempted, 0, "no plan installed");
    }

    #[test]
    fn survives_fault_injection_with_oracle_verified_result() {
        // 5% launch failures, 1% read bit flips, 2% hangs — the acceptance
        // scenario. The returned cost must match the CPU oracle exactly.
        let inst = Instance::paper_example_cdd();
        let p = GpuSaParams {
            fault: Some(cuda_sim::FaultPlan::with_rates(99, 0.05, 0.01, 0.02)),
            ..small_params(150)
        };
        let r = run_gpu_sa(&inst, &p).unwrap();
        let eval = evaluator_for(&inst);
        assert_eq!(eval.evaluate(r.best.as_slice()), r.objective, "oracle must confirm");
        assert!(r.best.is_valid_permutation());
        let f = r.recovery.faults;
        assert!(f.launches_attempted > 0);
        assert!(f.bit_flips > 0, "1% per read over 150 generations must flip");
        assert!(r.recovery.launch_retries > 0, "5% launch failures must trigger retries");
    }

    #[test]
    fn fault_injected_run_is_deterministic() {
        let inst = Instance::paper_example_cdd();
        let p = GpuSaParams {
            fault: Some(cuda_sim::FaultPlan::with_rates(7, 0.03, 0.005, 0.01)),
            ..small_params(80)
        };
        let a = run_gpu_sa(&inst, &p).unwrap();
        let b = run_gpu_sa(&inst, &p).unwrap();
        assert_eq!(a.objective, b.objective);
        assert_eq!(a.best, b.best);
        assert_eq!(a.recovery, b.recovery);
    }

    #[test]
    fn degrades_to_cpu_ensemble_when_device_unusable() {
        // Every launch fails: all retries and device attempts are consumed,
        // then the CPU ensemble supplies an oracle-exact result.
        let inst = Instance::paper_example_cdd();
        let p = GpuSaParams {
            fault: Some(cuda_sim::FaultPlan::with_rates(1, 1.0, 0.0, 0.0)),
            ..small_params(30)
        };
        let r = run_gpu_sa(&inst, &p).unwrap();
        assert!(r.recovery.cpu_fallback);
        assert_eq!(r.recovery.device_attempts, p.recovery.max_device_attempts);
        assert!(r.profiler_summary.contains("cpu-fallback"));
        let eval = evaluator_for(&inst);
        assert_eq!(eval.evaluate(r.best.as_slice()), r.objective);
    }
}
