//! The full GPU **asynchronous parallel SA** pipeline (paper Figs. 9–10).
//!
//! Host side: estimate `T₀` (stddev of 5000 random fitness values), generate
//! the initial ensemble and RNG states, copy everything to the device, then
//! per generation launch *perturbation → fitness → acceptance → reduction*
//! and cool the temperature. At the end, copy back the packed global best
//! and the winning thread's personal-best row.
//!
//! All reported times are the simulator's modeled device times, including
//! every host↔device transfer — matching the paper's accounting ("the total
//! runtime of our parallel algorithms incorporating all the memory transfers
//! between the host and the device").

use crate::init::{initial_ensemble, InitStrategy};
use crate::kernels::{AcceptKernel, FitnessKernel, PerturbKernel};
use crate::layout::ProblemDevice;
use cdd_core::eval::evaluator_for;
use cdd_core::{Cost, Instance, JobSequence};
use cdd_meta::temperature::initial_temperature;
use cuda_sim::reduce::{unpack_argmin, AtomicArgminKernel};
use cuda_sim::{DeviceSpec, Gpu, LaunchConfig, LaunchError, XorWow};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters of one GPU SA run.
#[derive(Debug, Clone)]
pub struct GpuSaParams {
    /// Grid size (the paper fixes 4 blocks).
    pub blocks: usize,
    /// Block size (the paper found 192 best on its device).
    pub block_size: usize,
    /// Generations (1000 or 5000 in the paper).
    pub iterations: u64,
    /// Perturbation size `Pert`.
    pub pert: usize,
    /// Exponential cooling factor μ.
    pub cooling_rate: f64,
    /// Initial temperature; `None` applies the stddev-of-5000-samples rule.
    pub t0: Option<f64>,
    /// Samples for the `T₀` estimate.
    pub t0_samples: usize,
    /// Master seed (thread `t` uses XORWOW stream `t`).
    pub seed: u64,
    /// Starting-ensemble strategy (default: V-shaped heuristic spread).
    pub init: InitStrategy,
    /// Simulated device.
    pub device: DeviceSpec,
}

impl Default for GpuSaParams {
    fn default() -> Self {
        GpuSaParams {
            blocks: 4,
            block_size: 192,
            iterations: 1000,
            pert: 4,
            cooling_rate: 0.88,
            t0: None,
            t0_samples: 5000,
            seed: 2016,
            init: InitStrategy::default(),
            device: DeviceSpec::gt560m(),
        }
    }
}

impl GpuSaParams {
    /// The paper's `SA₁₀₀₀` configuration (768 threads = 4 × 192).
    pub fn paper_1000() -> Self {
        Self::default()
    }

    /// The paper's `SA₅₀₀₀` configuration.
    pub fn paper_5000() -> Self {
        GpuSaParams { iterations: 5000, ..Self::default() }
    }

    /// Ensemble size (total threads).
    pub fn ensemble(&self) -> usize {
        self.blocks * self.block_size
    }
}

/// Result of a GPU pipeline run (SA or DPSO).
#[derive(Debug, Clone)]
pub struct GpuRunResult {
    /// Best sequence found by the ensemble.
    pub best: JobSequence,
    /// Its objective value.
    pub objective: Cost,
    /// Fitness evaluations across all threads.
    pub evaluations: u64,
    /// Initial temperature used (SA; 0 for DPSO).
    pub t0: f64,
    /// Total modeled device time (kernels + transfers), seconds.
    pub modeled_seconds: f64,
    /// Modeled kernel time, seconds.
    pub kernel_seconds: f64,
    /// Modeled transfer time, seconds.
    pub transfer_seconds: f64,
    /// Kernel launches performed.
    pub kernel_launches: usize,
    /// Per-kernel profiler summary (the Fig. 9/10 timeline evidence).
    pub profiler_summary: String,
}

/// Run the paper's parallel asynchronous SA on the simulated GPU.
pub fn run_gpu_sa(inst: &Instance, params: &GpuSaParams) -> Result<GpuRunResult, LaunchError> {
    assert!(params.iterations >= 1, "need at least one generation");
    let n = inst.n();
    let ensemble = params.ensemble();
    let cfg = LaunchConfig::linear(params.blocks, params.block_size);

    // Host-side setup: T₀ rule and initial ensemble. Randomly initialized
    // chains use the paper's global rule (stddev of `t0_samples` random
    // fitnesses); heuristically seeded chains calibrate to the local move
    // scale so the good start survives the hot phase (see
    // `cdd_meta::temperature::initial_temperature_local`).
    let mut host_rng = StdRng::seed_from_u64(params.seed);
    let evaluator = evaluator_for(inst);
    let t0 = params.t0.unwrap_or_else(|| match params.init {
        InitStrategy::Random => {
            initial_temperature(evaluator.as_ref(), params.t0_samples, &mut host_rng)
        }
        InitStrategy::VShapedSpread => cdd_meta::initial_temperature_local(
            evaluator.as_ref(),
            &cdd_core::heuristics::v_shaped_sequence(inst),
            params.pert,
            params.t0_samples.min(500),
            &mut host_rng,
        ),
    });

    let mut gpu = Gpu::new(params.device.clone());
    let prob = ProblemDevice::upload(&mut gpu, inst)?;

    // Fig. 9: initial sequences + cuRAND states host → device.
    let current = gpu.alloc::<u32>(ensemble * n);
    let flat = initial_ensemble(inst, ensemble, params.init, &mut host_rng);
    gpu.h2d(current, &flat);
    let candidate = gpu.alloc::<u32>(ensemble * n);
    let energies = gpu.alloc::<i64>(ensemble);
    let cand_energies = gpu.alloc::<i64>(ensemble);
    let best_rows = gpu.alloc::<u32>(ensemble * n);
    let best_energies = gpu.alloc::<i64>(ensemble);
    gpu.h2d(best_energies, &vec![i64::MAX; ensemble]);
    let global_best = gpu.alloc::<i64>(1);
    gpu.h2d(global_best, &[i64::MAX]);
    let rng_states = gpu.alloc::<u64>(ensemble * 3);
    let words: Vec<u64> =
        (0..ensemble).flat_map(|t| XorWow::new(params.seed, t as u64).pack()).collect();
    gpu.h2d(rng_states, &words);

    // Initial fitness of the starting ensemble.
    let fitness_current =
        FitnessKernel { prob, seqs: current, out: energies, ensemble };
    gpu.launch(&fitness_current, cfg, &[])?;

    let perturb = PerturbKernel {
        src: current,
        dst: candidate,
        rng: rng_states,
        n,
        ensemble,
        pert: params.pert,
    };
    let fitness_candidate =
        FitnessKernel { prob, seqs: candidate, out: cand_energies, ensemble };
    let reduce = AtomicArgminKernel { values: best_energies, out: global_best };

    let mut temperature = t0;
    for _gen in 0..params.iterations {
        gpu.launch(&perturb, cfg, &[])?;
        gpu.launch(&fitness_candidate, cfg, &[])?;
        let accept = AcceptKernel {
            current,
            candidate,
            energies,
            cand_energies,
            best_rows,
            best_energies,
            rng: rng_states,
            n,
            ensemble,
            temperature,
        };
        gpu.launch(&accept, cfg, &[])?;
        gpu.launch(&reduce, cfg, &[])?;
        temperature *= params.cooling_rate;
    }

    // Fig. 9: global best (and the winning row) device → host.
    let key = gpu.d2h(global_best)[0];
    let (objective, winner) = unpack_argmin(key);
    let row = gpu.d2h_range(best_rows, winner * n, n);
    let best = JobSequence::from_vec(row).expect("device rows stay permutations");
    debug_assert_eq!(evaluator.evaluate(best.as_slice()), objective);

    let profiler = gpu.profiler();
    Ok(GpuRunResult {
        best,
        objective,
        evaluations: ensemble as u64 * (params.iterations + 1),
        t0,
        modeled_seconds: profiler.total_seconds(),
        kernel_seconds: profiler.kernel_seconds(),
        transfer_seconds: profiler.transfer_seconds(),
        kernel_launches: profiler.kernel_launches(),
        profiler_summary: profiler.summary(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdd_core::exact::best_sequence_bruteforce;

    fn small_params(iterations: u64) -> GpuSaParams {
        GpuSaParams { blocks: 2, block_size: 32, iterations, ..Default::default() }
    }

    #[test]
    fn gpu_sa_finds_paper_example_optimum() {
        let inst = Instance::paper_example_cdd();
        let (_, optimum) = best_sequence_bruteforce(&inst);
        let r = run_gpu_sa(&inst, &small_params(300)).unwrap();
        assert_eq!(r.objective, optimum);
        assert!(r.best.is_valid_permutation());
    }

    #[test]
    fn gpu_sa_solves_ucddcp_example() {
        let inst = Instance::paper_example_ucddcp();
        let (_, optimum) = best_sequence_bruteforce(&inst);
        let r = run_gpu_sa(&inst, &small_params(300)).unwrap();
        assert_eq!(r.objective, optimum);
    }

    #[test]
    fn result_is_deterministic_per_seed() {
        let inst = Instance::paper_example_cdd();
        let a = run_gpu_sa(&inst, &small_params(100)).unwrap();
        let b = run_gpu_sa(&inst, &small_params(100)).unwrap();
        assert_eq!(a.objective, b.objective);
        assert_eq!(a.best, b.best);
        assert_eq!(a.modeled_seconds, b.modeled_seconds);
    }

    #[test]
    fn timeline_matches_four_kernels_per_generation() {
        let inst = Instance::paper_example_cdd();
        let iters = 50;
        let r = run_gpu_sa(&inst, &small_params(iters)).unwrap();
        // 1 initial fitness + 4 kernels × generations.
        assert_eq!(r.kernel_launches as u64, 1 + 4 * iters);
        assert!(r.modeled_seconds > 0.0);
        assert!(r.kernel_seconds > 0.0);
        assert!(r.transfer_seconds > 0.0);
        assert!(r.profiler_summary.contains("fitness"));
        assert!(r.profiler_summary.contains("perturbation"));
        assert!(r.profiler_summary.contains("acceptance"));
        assert!(r.profiler_summary.contains("reduce_atomic_argmin"));
    }

    #[test]
    fn five_x_iterations_cost_about_five_x_modeled_time() {
        // The paper: "increasing the number of generations by a factor of
        // five also increases the runtime by a factor about five".
        let inst = Instance::paper_example_cdd();
        let r1 = run_gpu_sa(&inst, &small_params(100)).unwrap();
        let r5 = run_gpu_sa(&inst, &small_params(500)).unwrap();
        let ratio = r5.kernel_seconds / r1.kernel_seconds;
        assert!((4.0..6.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn evaluations_counted_across_ensemble() {
        let inst = Instance::paper_example_cdd();
        let r = run_gpu_sa(&inst, &small_params(10)).unwrap();
        assert_eq!(r.evaluations, 64 * 11);
    }
}
