//! Device memory layout for a problem instance (the paper's Fig. 9).
//!
//! Per-job arrays live in global memory; the scalars `d` and `n` go to
//! constant memory "to benefit from its broadcast mechanism". Sequences are
//! stored row-major, one row of `n` job ids per thread.

use cdd_core::{Instance, ProblemKind, Time};
use cuda_sim::{Buf, ConstBuf, ExecBackend, LaunchError};

/// Handles to an uploaded problem instance.
#[derive(Debug, Clone, Copy)]
pub struct ProblemDevice {
    /// Which problem the kernels must solve.
    pub kind: ProblemKind,
    /// Job count `n` (also mirrored in constant memory).
    pub n: usize,
    /// Due date `d` (also mirrored in constant memory).
    pub d: Time,
    /// Processing times `Pᵢ` (global; the paper deliberately does **not**
    /// cache these in shared memory — "there are only a few reads").
    pub p: Buf<i64>,
    /// Minimum processing times `Mᵢ` (UCDDCP; equals `p` content for CDD).
    pub m: Buf<i64>,
    /// Earliness penalty rates `αᵢ` (staged to shared memory by kernels).
    pub alpha: Buf<i64>,
    /// Tardiness penalty rates `βᵢ` (staged to shared memory by kernels).
    pub beta: Buf<i64>,
    /// Compression penalty rates `γᵢ` (UCDDCP).
    pub gamma: Buf<i64>,
    /// `[d, n]` in constant memory.
    pub scalars: ConstBuf<i64>,
}

impl ProblemDevice {
    /// Upload `inst` to the device (records the H2D transfers of Fig. 9).
    pub fn upload<B: ExecBackend>(gpu: &mut B, inst: &Instance) -> Result<Self, LaunchError> {
        let (p, m, a, b, g) = inst.to_arrays();
        let n = inst.n();
        let pb = gpu.alloc::<i64>(n);
        gpu.h2d(pb, &p);
        let mb = gpu.alloc::<i64>(n);
        gpu.h2d(mb, &m);
        let ab = gpu.alloc::<i64>(n);
        gpu.h2d(ab, &a);
        let bb = gpu.alloc::<i64>(n);
        gpu.h2d(bb, &b);
        let gb = gpu.alloc::<i64>(n);
        gpu.h2d(gb, &g);
        let scalars = gpu.alloc_const(&[inst.due_date(), n as i64])?;
        Ok(ProblemDevice {
            kind: inst.kind(),
            n,
            d: inst.due_date(),
            p: pb,
            m: mb,
            alpha: ab,
            beta: bb,
            gamma: gb,
            scalars,
        })
    }

    /// Shared-memory bytes the fitness kernel stages for this problem
    /// (α and β, plus γ for UCDDCP — 8 bytes per rate).
    pub fn staged_shared_bytes(&self) -> usize {
        match self.kind {
            ProblemKind::Cdd => 2 * self.n * 8,
            ProblemKind::Ucddcp => 3 * self.n * 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuda_sim::{DeviceSpec, Gpu};

    #[test]
    fn upload_records_transfers_and_mirrors_scalars() {
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        let inst = Instance::paper_example_ucddcp();
        let dev = ProblemDevice::upload(&mut gpu, &inst).unwrap();
        assert_eq!(dev.n, 5);
        assert_eq!(dev.d, 22);
        assert_eq!(gpu.peek(dev.p), vec![6, 5, 2, 4, 4]);
        assert_eq!(gpu.peek(dev.gamma), vec![5, 4, 3, 2, 1]);
        // 5 buffers + constant region = 6 recorded H2D transfers.
        assert_eq!(gpu.profiler().events().len(), 6);
        assert!(gpu.profiler().transfer_seconds() > 0.0);
    }

    #[test]
    fn staged_bytes_depend_on_problem_kind() {
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        let cdd = ProblemDevice::upload(&mut gpu, &Instance::paper_example_cdd()).unwrap();
        let uc = ProblemDevice::upload(&mut gpu, &Instance::paper_example_ucddcp()).unwrap();
        assert_eq!(cdd.staged_shared_bytes(), 2 * 5 * 8);
        assert_eq!(uc.staged_shared_bytes(), 3 * 5 * 8);
    }
}
