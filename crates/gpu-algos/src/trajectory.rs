//! Search-trajectory traces: the host-side decode of the `cuda-sim`
//! telemetry ring ([`cuda_sim::telemetry`]) into per-generation convergence
//! data, plus the summary statistics and Chrome-trace counter events built
//! from it.
//!
//! Lane semantics per algorithm (fixed by the writing kernels):
//!
//! | algorithm | lane 0 (`best`) | lane 1 (`current`) | lane 2 (`aux`) | counter |
//! |---|---|---|---|---|
//! | `sa` / `sync-sa` | best-so-far energy | post-acceptance energy | cumulative accepted moves | accepted moves |
//! | `dpso` | personal-best energy | current energy | Hamming distance to the generation-start swarm best | pbest improvements |
//!
//! Retried watchdog-killed launches re-run their telemetry writes, so the
//! cumulative counters can over-count under fault injection; samples are
//! last-writer-wins and stay exact. Nothing in this module feeds back into
//! results, metrics snapshots or fault streams — see the determinism
//! contract in DESIGN.md §10.

use cdd_metrics::trace::TraceEvent;
use cuda_sim::telemetry::{TelemetryRing, TELEMETRY_LANES};
use cuda_sim::{ExecBackend, TimelineEvent};

/// One sampled generation across the whole ensemble.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationSample {
    /// Generation index (global across levels for the sync pipeline).
    pub gen: u64,
    /// Temperature the generation ran at (0 for DPSO).
    pub temperature: f64,
    /// Lane 0 per chain: best-so-far (SA) / personal-best (DPSO) energy.
    pub best: Vec<i64>,
    /// Lane 1 per chain: the chain's current energy after the generation.
    pub current: Vec<i64>,
    /// Lane 2 per chain: cumulative accepted moves (SA) or Hamming distance
    /// to the generation-start swarm best (DPSO).
    pub aux: Vec<i64>,
}

impl GenerationSample {
    /// Minimum best-so-far across the ensemble at this sample.
    #[must_use]
    pub fn ensemble_best(&self) -> i64 {
        self.best.iter().copied().min().unwrap_or(i64::MAX)
    }
}

/// A decoded search trajectory, carried on
/// [`GpuRunResult`](crate::GpuRunResult) next to the profiler timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceTrace {
    /// `"sa"`, `"dpso"` or `"sync-sa"`.
    pub algorithm: String,
    /// Sampling stride (generations between samples).
    pub stride: u64,
    /// Chains (ensemble size) recorded.
    pub chains: usize,
    /// Generations covered by one profiler span of this pipeline (1 for the
    /// per-generation spans; the Markov length for the sync pipeline's
    /// per-level spans). Maps sampled generations onto span indices when
    /// plotting on the modeled clock.
    pub gens_per_span: u64,
    /// Samples in chronological order (the ring's retained window).
    pub samples: Vec<GenerationSample>,
    /// Final cumulative per-chain event counters (accepted moves / pbest
    /// improvements).
    pub counters: Vec<i64>,
}

impl ConvergenceTrace {
    /// Drain a device ring into a chronological trace. `headers` is the
    /// host-kept `(generation, temperature)` list, one entry per sampled
    /// generation in run order; when the run sampled more generations than
    /// the ring holds, only the newest `capacity` survive.
    #[must_use]
    pub fn from_ring<B: ExecBackend>(
        algorithm: &str,
        stride: u64,
        gens_per_span: u64,
        headers: &[(u64, f64)],
        ring: &TelemetryRing,
        gpu: &B,
    ) -> Self {
        let (lanes, counters) = ring.snapshot(gpu);
        let kept = headers.len().min(ring.capacity);
        let samples = headers[headers.len() - kept..]
            .iter()
            .map(|&(gen, temperature)| {
                let slot = ((gen / stride.max(1)) as usize) % ring.capacity;
                let mut sample = GenerationSample {
                    gen,
                    temperature,
                    best: Vec::with_capacity(ring.chains),
                    current: Vec::with_capacity(ring.chains),
                    aux: Vec::with_capacity(ring.chains),
                };
                for chain in 0..ring.chains {
                    let base = (slot * ring.chains + chain) * TELEMETRY_LANES;
                    sample.best.push(lanes[base]);
                    sample.current.push(lanes[base + 1]);
                    sample.aux.push(lanes[base + 2]);
                }
                sample
            })
            .collect();
        ConvergenceTrace {
            algorithm: algorithm.to_string(),
            stride,
            chains: ring.chains,
            gens_per_span: gens_per_span.max(1),
            samples,
            counters,
        }
    }

    /// The profiler span label this pipeline wraps its generations in.
    #[must_use]
    pub fn span_label(&self) -> &'static str {
        match self.algorithm.as_str() {
            "dpso" => "dpso-generation",
            "sync-sa" => "sync-sa-level",
            _ => "sa-generation",
        }
    }

    /// `(generation, ensemble best-so-far)` per sample.
    #[must_use]
    pub fn ensemble_best_curve(&self) -> Vec<(u64, i64)> {
        self.samples.iter().map(|s| (s.gen, s.ensemble_best())).collect()
    }
}

/// Summary statistics of one trajectory — the numbers a `%Δ` regression gets
/// debugged with.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceSummary {
    /// Samples the trace retained.
    pub samples: usize,
    /// Chains recorded.
    pub chains: usize,
    /// Ensemble best at the final sample.
    pub final_best: i64,
    /// First sampled generation whose ensemble best is within 1% of the
    /// final best (`None` for an empty trace).
    pub generations_to_within_1pct: Option<u64>,
    /// Fraction of chains whose best-so-far did not improve between the
    /// midpoint sample and the final sample (0 when fewer than 2 samples).
    pub stalled_chain_fraction: f64,
    /// Acceptance rate over the final inter-sample window (SA pipelines;
    /// 0 for DPSO). Can exceed 1 only when watchdog-killed launches were
    /// retried (their accepted-move bumps re-run).
    pub acceptance_rate_final: f64,
    /// First sampled generation from which the ensemble stays collapsed to
    /// the end (SA: all current energies equal; DPSO: every particle at
    /// Hamming distance 0 from the swarm best). `None` if it never does.
    pub diversity_collapse_gen: Option<u64>,
}

impl ConvergenceSummary {
    /// Compute the summary of a trace.
    #[must_use]
    pub fn from_trace(trace: &ConvergenceTrace) -> Self {
        let samples = &trace.samples;
        let final_best = samples.last().map(GenerationSample::ensemble_best).unwrap_or(i64::MAX);

        let generations_to_within_1pct = samples.iter().find_map(|s| {
            let threshold = final_best as f64 * if final_best >= 0 { 1.01 } else { 0.99 };
            (s.ensemble_best() as f64 <= threshold).then_some(s.gen)
        });

        let stalled_chain_fraction = if samples.len() >= 2 && trace.chains > 0 {
            let mid = &samples[samples.len() / 2];
            let last = samples.last().expect("len >= 2");
            let stalled =
                (0..trace.chains).filter(|&c| mid.best[c] == last.best[c]).count();
            stalled as f64 / trace.chains as f64
        } else {
            0.0
        };

        let acceptance_rate_final = if trace.algorithm != "dpso" && samples.len() >= 2 {
            let prev = &samples[samples.len() - 2];
            let last = samples.last().expect("len >= 2");
            let moves: i64 = (0..trace.chains)
                .map(|c| (last.aux[c] - prev.aux[c]).max(0))
                .sum();
            let window = (last.gen - prev.gen).max(1) as f64 * trace.chains as f64;
            moves as f64 / window
        } else {
            0.0
        };

        let collapsed = |s: &GenerationSample| -> bool {
            if trace.algorithm == "dpso" {
                s.aux.iter().all(|&d| d == 0)
            } else {
                s.current.windows(2).all(|w| w[0] == w[1])
            }
        };
        let mut diversity_collapse_gen = None;
        for s in samples.iter().rev() {
            if collapsed(s) {
                diversity_collapse_gen = Some(s.gen);
            } else {
                break;
            }
        }

        ConvergenceSummary {
            samples: samples.len(),
            chains: trace.chains,
            final_best,
            generations_to_within_1pct,
            stalled_chain_fraction,
            acceptance_rate_final,
            diversity_collapse_gen,
        }
    }
}

/// Convert a trajectory into Chrome-trace counter (`C`) events positioned on
/// the modeled clock of `timeline`, so the best-so-far curve renders under
/// the kernel tracks. Each sampled generation's ensemble best is emitted at
/// the close of the span that executed it; `start_us` must match the value
/// passed to `timeline_trace_events` for the same timeline.
#[must_use]
pub fn counter_trace_events(
    trace: &ConvergenceTrace,
    timeline: &[TimelineEvent],
    pid: u32,
    tid: u32,
    start_us: f64,
) -> Vec<TraceEvent> {
    use std::collections::BTreeMap;
    // span index -> ensemble best of the latest sample inside that span.
    let mut by_span: BTreeMap<u64, i64> = BTreeMap::new();
    for s in &trace.samples {
        by_span.insert(s.gen / trace.gens_per_span, s.ensemble_best());
    }
    let label = trace.span_label();
    let counter_name = format!("{}-best", trace.algorithm);
    let mut out = Vec::new();
    let mut clock = start_us;
    let mut span_idx = 0u64;
    for e in timeline {
        clock += e.seconds() * 1e6;
        if let TimelineEvent::SpanEnd { name } = e {
            if name == label {
                if let Some(&best) = by_span.get(&span_idx) {
                    out.push(
                        TraceEvent::counter(&counter_name, "convergence", pid, tid, clock)
                            .with_num_arg("best", best as f64),
                    );
                }
                span_idx += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(gen: u64, best: Vec<i64>, current: Vec<i64>, aux: Vec<i64>) -> GenerationSample {
        GenerationSample { gen, temperature: 1.0, best, current, aux }
    }

    fn sa_trace(samples: Vec<GenerationSample>) -> ConvergenceTrace {
        let chains = samples.first().map_or(0, |s| s.best.len());
        ConvergenceTrace {
            algorithm: "sa".into(),
            stride: 1,
            chains,
            gens_per_span: 1,
            samples,
            counters: Vec::new(),
        }
    }

    #[test]
    fn summary_of_a_converging_sa_run() {
        let trace = sa_trace(vec![
            sample(0, vec![100, 90], vec![100, 90], vec![1, 1]),
            sample(1, vec![60, 90], vec![70, 95], vec![2, 1]),
            sample(2, vec![50, 90], vec![50, 50], vec![3, 2]),
            sample(3, vec![50, 90], vec![50, 50], vec![4, 2]),
        ]);
        let s = ConvergenceSummary::from_trace(&trace);
        assert_eq!(s.final_best, 50);
        assert_eq!(s.generations_to_within_1pct, Some(2));
        // Midpoint = sample index 2; both chains' bests unchanged since.
        assert_eq!(s.stalled_chain_fraction, 1.0);
        // Final window: (4-3) + (2-2) accepted over 2 chains × 1 gen.
        assert!((s.acceptance_rate_final - 0.5).abs() < 1e-12);
        // Currents equalize at gen 2 and stay so.
        assert_eq!(s.diversity_collapse_gen, Some(2));
        assert_eq!(trace.ensemble_best_curve(), vec![(0, 90), (1, 60), (2, 50), (3, 50)]);
    }

    #[test]
    fn dpso_collapse_uses_the_hamming_lane() {
        let mut trace = sa_trace(vec![
            sample(0, vec![10, 10], vec![10, 10], vec![3, 0]),
            sample(1, vec![10, 10], vec![10, 10], vec![0, 0]),
        ]);
        trace.algorithm = "dpso".into();
        let s = ConvergenceSummary::from_trace(&trace);
        assert_eq!(s.diversity_collapse_gen, Some(1));
        assert_eq!(s.acceptance_rate_final, 0.0, "acceptance is an SA-only statistic");
        assert_eq!(trace.span_label(), "dpso-generation");
    }

    #[test]
    fn empty_trace_summarizes_without_panicking() {
        let s = ConvergenceSummary::from_trace(&sa_trace(Vec::new()));
        assert_eq!(s.samples, 0);
        assert_eq!(s.generations_to_within_1pct, None);
        assert_eq!(s.stalled_chain_fraction, 0.0);
        assert_eq!(s.diversity_collapse_gen, None);
    }

    #[test]
    fn counter_events_land_on_their_spans_close() {
        use cuda_sim::cost::CostCounter;
        use cuda_sim::LaunchConfig;
        let kernel = |secs: f64| TimelineEvent::Kernel {
            name: "k".into(),
            config: LaunchConfig::linear(1, 32),
            seconds: secs,
            total_cost: CostCounter::default(),
        };
        // Two generations, one sampled each; a non-matching span between.
        let timeline = vec![
            TimelineEvent::SpanBegin { name: "sa-generation".into(), args: Vec::new() },
            kernel(0.001),
            TimelineEvent::SpanEnd { name: "sa-generation".into() },
            TimelineEvent::SpanBegin { name: "other".into(), args: Vec::new() },
            TimelineEvent::SpanEnd { name: "other".into() },
            TimelineEvent::SpanBegin { name: "sa-generation".into(), args: Vec::new() },
            kernel(0.002),
            TimelineEvent::SpanEnd { name: "sa-generation".into() },
        ];
        let trace = sa_trace(vec![
            sample(0, vec![80], vec![80], vec![0]),
            sample(1, vec![70], vec![70], vec![1]),
        ]);
        let evs = counter_trace_events(&trace, &timeline, 0, 5, 100.0);
        assert_eq!(evs.len(), 2);
        assert!(evs.iter().all(|e| e.ph == 'C' && e.tid == 5));
        assert_eq!(evs[0].num_args, vec![("best".to_string(), 80.0)]);
        assert!((evs[0].ts_us - 1100.0).abs() < 1e-9, "after the 1 ms kernel");
        assert_eq!(evs[1].num_args, vec![("best".to_string(), 70.0)]);
        assert!((evs[1].ts_us - 3100.0).abs() < 1e-9, "after both kernels");
    }

    #[test]
    fn sampled_strides_map_to_span_indices() {
        // Stride 2, spans of 1 gen: samples at gens 0 and 2 map to spans 0, 2.
        let timeline: Vec<TimelineEvent> = (0..3)
            .flat_map(|_| {
                vec![
                    TimelineEvent::SpanBegin { name: "sa-generation".into(), args: Vec::new() },
                    TimelineEvent::SpanEnd { name: "sa-generation".into() },
                ]
            })
            .collect();
        let mut trace = sa_trace(vec![
            sample(0, vec![9], vec![9], vec![0]),
            sample(2, vec![5], vec![5], vec![1]),
        ]);
        trace.stride = 2;
        let evs = counter_trace_events(&trace, &timeline, 0, 0, 0.0);
        assert_eq!(evs.len(), 2, "unsampled span 1 emits nothing");
        assert_eq!(evs[0].num_args[0].1, 9.0);
        assert_eq!(evs[1].num_args[0].1, 5.0);
    }
}
