//! Unified, batch-sized pipeline entry point: run one solve request on one
//! (simulated) device without any campaign plumbing.
//!
//! The campaign runner (`cdd-bench`) and the solver service (`cdd-service`)
//! both need "run *this algorithm* with *this budget and seed* on *this
//! device*" as a single call. [`run_gpu_solve`] is that call: it maps a
//! [`cdd_core::Algorithm`] + budget + seed onto the SA or DPSO pipeline
//! under a shared device/geometry/fault/recovery configuration
//! ([`GpuSolveSpec`]), leaving the algorithm-specific tuning knobs
//! (cooling, `Pert`, swarm coefficients) at the paper's defaults.

use crate::batch::{run_gpu_sa_batch, BatchEntry};
use crate::dpso_pipeline::{run_gpu_dpso, GpuDpsoParams};
use crate::recovery::RecoveryPolicy;
use crate::sa_pipeline::{run_gpu_sa, DeltaConfig, GpuRunResult, GpuSaParams};
use cdd_core::{Algorithm, Instance, SuiteError};
use cuda_sim::{Backend, DeviceSpec, FaultPlan, TelemetryConfig};

/// Device, geometry and resilience configuration shared by every solve a
/// caller dispatches — everything about *where and how safely* to run, as
/// opposed to *what* to run (which the request supplies).
#[derive(Debug, Clone)]
pub struct GpuSolveSpec {
    /// Grid size (the paper fixes 4 blocks).
    pub blocks: usize,
    /// Block size (192 in the paper).
    pub block_size: usize,
    /// Simulated device.
    pub device: DeviceSpec,
    /// Optional fault-injection plan installed for the run.
    pub fault: Option<FaultPlan>,
    /// Retry / re-attempt / fallback policy.
    pub recovery: RecoveryPolicy,
    /// Convergence-telemetry policy (disabled by default; sampling changes
    /// no result — see `cuda_sim::telemetry`).
    pub telemetry: TelemetryConfig,
    /// Incremental (delta) candidate scoring for the SA pipelines — outcome-
    /// identical to full evaluation by contract; DPSO ignores it (personal-
    /// best maintenance needs the full score anyway).
    pub delta: DeltaConfig,
    /// Execution backend: the simulator (default) or the native host path.
    /// Byte-identical outcomes by contract; fault injection and telemetry
    /// are sim-only and rejected on native.
    pub backend: Backend,
}

impl Default for GpuSolveSpec {
    fn default() -> Self {
        GpuSolveSpec {
            blocks: 4,
            block_size: 192,
            device: DeviceSpec::gt560m(),
            fault: None,
            recovery: RecoveryPolicy::default(),
            telemetry: TelemetryConfig::disabled(),
            delta: DeltaConfig::default(),
            backend: Backend::default(),
        }
    }
}

impl GpuSolveSpec {
    /// Ensemble size (threads = chains = particles).
    pub fn ensemble(&self) -> usize {
        self.blocks * self.block_size
    }
}

/// Run one solve (algorithm + budget + seed) under `spec`. Dispatches to
/// the SA or DPSO pipeline; both arrive wrapped in the full resilience
/// layer (launch retries, reseeded device re-attempts, oracle validation,
/// CPU fallback) exactly as the campaign runner gets them.
pub fn run_gpu_solve(
    inst: &Instance,
    algorithm: Algorithm,
    iterations: u64,
    seed: u64,
    spec: &GpuSolveSpec,
) -> Result<GpuRunResult, SuiteError> {
    match algorithm {
        Algorithm::Sa => run_gpu_sa(
            inst,
            &GpuSaParams {
                blocks: spec.blocks,
                block_size: spec.block_size,
                iterations,
                seed,
                device: spec.device.clone(),
                fault: spec.fault.clone(),
                recovery: spec.recovery.clone(),
                telemetry: spec.telemetry,
                delta: spec.delta,
                backend: spec.backend,
                ..Default::default()
            },
        ),
        Algorithm::Dpso => run_gpu_dpso(
            inst,
            &GpuDpsoParams {
                blocks: spec.blocks,
                block_size: spec.block_size,
                iterations,
                seed,
                device: spec.device.clone(),
                fault: spec.fault.clone(),
                recovery: spec.recovery.clone(),
                telemetry: spec.telemetry,
                backend: spec.backend,
                ..Default::default()
            },
        ),
    }
}

/// Run several solves (each an instance + seed, sharing `algorithm`,
/// `iterations` and `spec`) as one fused device run when the pipeline
/// supports it. SA requests fuse via [`run_gpu_sa_batch`] — one grid, one
/// launch sequence, byte-identical per-request outcomes; DPSO requests (and
/// SA groups the fusion preconditions reject, e.g. under a fault plan or
/// with telemetry on) run solo in order. Results come back in entry order
/// either way.
pub fn run_gpu_solve_batch(
    entries: &[(Instance, u64)],
    algorithm: Algorithm,
    iterations: u64,
    spec: &GpuSolveSpec,
) -> Result<Vec<GpuRunResult>, SuiteError> {
    match algorithm {
        Algorithm::Sa => {
            let batch: Vec<BatchEntry> = entries
                .iter()
                .map(|(instance, seed)| BatchEntry { instance: instance.clone(), seed: *seed })
                .collect();
            run_gpu_sa_batch(
                &batch,
                &GpuSaParams {
                    blocks: spec.blocks,
                    block_size: spec.block_size,
                    iterations,
                    device: spec.device.clone(),
                    fault: spec.fault.clone(),
                    recovery: spec.recovery.clone(),
                    telemetry: spec.telemetry,
                    delta: spec.delta,
                    backend: spec.backend,
                    ..Default::default()
                },
            )
        }
        Algorithm::Dpso => entries
            .iter()
            .map(|(inst, seed)| run_gpu_solve(inst, algorithm, iterations, *seed, spec))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdd_core::eval::evaluator_for;

    fn small_spec() -> GpuSolveSpec {
        GpuSolveSpec { blocks: 1, block_size: 32, ..Default::default() }
    }

    #[test]
    fn dispatches_both_algorithms() {
        let inst = Instance::paper_example_cdd();
        let sa = run_gpu_solve(&inst, Algorithm::Sa, 100, 7, &small_spec()).unwrap();
        let dpso = run_gpu_solve(&inst, Algorithm::Dpso, 100, 7, &small_spec()).unwrap();
        assert!(sa.objective > 0 && sa.modeled_seconds > 0.0);
        assert!(dpso.objective > 0 && dpso.modeled_seconds > 0.0);
        // SA launches 4 kernels per generation (+1 initial fitness); DPSO's
        // generation structure differs, so the two really took different paths.
        assert_eq!(sa.kernel_launches, 1 + 4 * 100);
        assert_ne!(sa.kernel_launches, dpso.kernel_launches);
    }

    #[test]
    fn matches_direct_pipeline_calls_bit_for_bit() {
        let inst = Instance::paper_example_ucddcp();
        let spec = small_spec();
        let unified = run_gpu_solve(&inst, Algorithm::Sa, 120, 3, &spec).unwrap();
        let direct = run_gpu_sa(
            &inst,
            &GpuSaParams {
                blocks: spec.blocks,
                block_size: spec.block_size,
                iterations: 120,
                seed: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(unified.objective, direct.objective);
        assert_eq!(unified.best, direct.best);
        assert_eq!(unified.modeled_seconds, direct.modeled_seconds);
    }

    #[test]
    fn solve_batch_matches_per_entry_solo_solves() {
        let spec = small_spec();
        let entries = vec![
            (Instance::paper_example_cdd(), 21),
            (Instance::paper_example_cdd(), 22),
            (Instance::paper_example_cdd(), 23),
        ];
        let fused = run_gpu_solve_batch(&entries, Algorithm::Sa, 90, &spec).unwrap();
        assert_eq!(fused.len(), entries.len());
        for ((inst, seed), b) in entries.iter().zip(&fused) {
            let solo = run_gpu_solve(inst, Algorithm::Sa, 90, *seed, &spec).unwrap();
            assert_eq!(b.best, solo.best, "seed {seed}");
            assert_eq!(b.objective, solo.objective);
            assert_eq!(b.evaluations, solo.evaluations);
        }
    }

    #[test]
    fn dpso_batch_runs_solo_in_order() {
        let spec = small_spec();
        let entries =
            vec![(Instance::paper_example_cdd(), 1), (Instance::paper_example_cdd(), 2)];
        let batched = run_gpu_solve_batch(&entries, Algorithm::Dpso, 60, &spec).unwrap();
        for ((inst, seed), b) in entries.iter().zip(&batched) {
            let solo = run_gpu_solve(inst, Algorithm::Dpso, 60, *seed, &spec).unwrap();
            assert_eq!(b.objective, solo.objective);
            assert_eq!(b.best, solo.best);
        }
    }

    #[test]
    fn faulted_solve_is_still_oracle_exact() {
        let inst = Instance::paper_example_cdd();
        let spec = GpuSolveSpec {
            fault: Some(FaultPlan::with_rates(5, 0.05, 0.01, 0.02)),
            ..small_spec()
        };
        let r = run_gpu_solve(&inst, Algorithm::Sa, 80, 11, &spec).unwrap();
        let eval = evaluator_for(&inst);
        assert_eq!(eval.evaluate(r.best.as_slice()), r.objective);
    }
}
