//! Property-based tests for the cdd-core invariants.

use cdd_core::exact::{
    cdd_objective_bruteforce, optimal_sequence_objective, ucddcp_objective_bruteforce,
};
use cdd_core::{
    optimize_cdd_sequence, optimize_ucddcp_sequence, Instance, JobSequence, Schedule, Time,
};
use proptest::prelude::*;

/// Strategy: a random CDD instance with n jobs and a due date anywhere from
/// highly restrictive (h ≈ 0) to unrestricted (h > 1).
fn cdd_instance(max_n: usize) -> impl Strategy<Value = Instance> {
    (1..=max_n).prop_flat_map(|n| {
        (
            prop::collection::vec(1..=20i64, n),
            prop::collection::vec(0..=10i64, n),
            prop::collection::vec(0..=15i64, n),
            0.0..1.4f64,
        )
            .prop_map(|(p, a, b, h)| {
                let d = (p.iter().sum::<Time>() as f64 * h) as Time;
                Instance::cdd_from_arrays(&p, &a, &b, d).expect("valid by construction")
            })
    })
}

/// Strategy: a random unrestricted UCDDCP instance.
fn ucddcp_instance(max_n: usize) -> impl Strategy<Value = Instance> {
    (1..=max_n).prop_flat_map(|n| {
        (
            prop::collection::vec((1..=20i64, 0..=10i64, 0..=15i64, 0..=10i64), n),
            0.0..0.6f64,
        )
            .prop_map(|(rows, slack)| {
                let p: Vec<Time> = rows.iter().map(|r| r.0).collect();
                // Mᵢ drawn via a second pass so 1 ≤ Mᵢ ≤ Pᵢ.
                let m: Vec<Time> = rows.iter().map(|r| 1 + (r.3 % r.0)).collect();
                let a: Vec<Time> = rows.iter().map(|r| r.1).collect();
                let b: Vec<Time> = rows.iter().map(|r| r.2).collect();
                let g: Vec<Time> = rows.iter().map(|r| r.3).collect();
                let total: Time = p.iter().sum();
                let d = total + (total as f64 * slack) as Time;
                Instance::ucddcp_from_arrays(&p, &m, &a, &b, &g, d)
                    .expect("valid by construction")
            })
    })
}

/// A permutation of 0..n produced from a seed (proptest shrinks the seed).
fn sequence_for(n: usize, seed: u64) -> JobSequence {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    JobSequence::random(n, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The O(n) CDD optimizer equals the O(n²) breakpoint scan.
    #[test]
    fn cdd_linear_equals_breakpoint_scan(inst in cdd_instance(14), seed in any::<u64>()) {
        let seq = sequence_for(inst.n(), seed);
        prop_assert_eq!(
            optimize_cdd_sequence(&inst, &seq).objective,
            cdd_objective_bruteforce(&inst, &seq)
        );
    }

    /// The O(n) UCDDCP optimizer equals the 2ⁿ compression enumeration.
    #[test]
    fn ucddcp_linear_equals_enumeration(inst in ucddcp_instance(9), seed in any::<u64>()) {
        let seq = sequence_for(inst.n(), seed);
        prop_assert_eq!(
            optimal_sequence_objective(&inst, &seq),
            ucddcp_objective_bruteforce(&inst, &seq)
        );
    }

    /// Expanding any CDD solution into an explicit schedule reproduces the
    /// optimizer's objective and passes feasibility validation.
    #[test]
    fn cdd_schedule_expansion_consistent(inst in cdd_instance(20), seed in any::<u64>()) {
        let seq = sequence_for(inst.n(), seed);
        let sol = optimize_cdd_sequence(&inst, &seq);
        let sched = Schedule::build(&inst, &seq, sol.shift, None);
        prop_assert_eq!(sched.objective(&inst), sol.objective);
        prop_assert!(sched.validate(&inst).is_ok());
    }

    /// Same for UCDDCP, including compressions.
    #[test]
    fn ucddcp_schedule_expansion_consistent(inst in ucddcp_instance(20), seed in any::<u64>()) {
        let seq = sequence_for(inst.n(), seed);
        let sol = optimize_ucddcp_sequence(&inst, &seq);
        let sched = Schedule::build(&inst, &seq, sol.shift, Some(&sol.compressions));
        prop_assert_eq!(sched.objective(&inst), sol.objective);
        prop_assert!(sched.validate(&inst).is_ok());
    }

    /// Compression can only help: UCDDCP optimum ≤ CDD optimum of the same
    /// sequence; and objectives are never negative.
    #[test]
    fn ucddcp_dominates_cdd(inst in ucddcp_instance(20), seed in any::<u64>()) {
        let seq = sequence_for(inst.n(), seed);
        let sol = optimize_ucddcp_sequence(&inst, &seq);
        prop_assert!(sol.objective <= sol.cdd_objective);
        prop_assert!(sol.objective >= 0);
    }

    /// The optimal shift never exceeds the due date (the first job never
    /// starts after d: that would make every job tardy and shifting left
    /// back to d weakly better).
    #[test]
    fn shift_bounded_by_due_date(inst in cdd_instance(20), seed in any::<u64>()) {
        let seq = sequence_for(inst.n(), seed);
        let sol = optimize_cdd_sequence(&inst, &seq);
        prop_assert!(sol.shift >= 0);
        prop_assert!(sol.shift <= inst.due_date());
    }

    /// Sequence operators preserve the permutation invariant.
    #[test]
    fn operators_preserve_permutation(
        n in 1usize..60,
        seed in any::<u64>(),
        a in any::<prop::sample::Index>(),
        b in any::<prop::sample::Index>(),
        start in any::<prop::sample::Index>(),
        size in 0usize..10,
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = JobSequence::random(n, &mut rng);
        s.swap(a.index(n), b.index(n));
        prop_assert!(s.is_valid_permutation());
        s.shuffle_window(start.index(n), size, &mut rng);
        prop_assert!(s.is_valid_permutation());
        s.insert_move(a.index(n), b.index(n));
        prop_assert!(s.is_valid_permutation());
        s.reverse_segment(a.index(n), b.index(n));
        prop_assert!(s.is_valid_permutation());
    }
}
