//! Property-based equivalence of the incremental [`DeltaEvaluator`] against
//! the full O(n) fixed-sequence optimizers, over random swap/insert move
//! streams on both problem kinds — including commits across re-sync
//! boundaries and fault-corrupted inputs (which must be rejected or scored
//! without panicking, never silently trusted).

use cdd_core::delta::{
    delta_objective, moves_structurally_valid, DeltaEvaluator, DeltaMove, DeltaState,
    DeltaWorkspace, SliceDeltaSource,
};
use cdd_core::eval::evaluator_for;
use cdd_core::{Instance, Time};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Strategy: a random CDD instance with n jobs, due date from restrictive
/// to unrestricted.
fn cdd_instance(max_n: usize) -> impl Strategy<Value = Instance> {
    (2..=max_n).prop_flat_map(|n| {
        (
            prop::collection::vec(1..=20i64, n),
            prop::collection::vec(0..=10i64, n),
            prop::collection::vec(0..=15i64, n),
            0.0..1.4f64,
        )
            .prop_map(|(p, a, b, h)| {
                let d = (p.iter().sum::<Time>() as f64 * h) as Time;
                Instance::cdd_from_arrays(&p, &a, &b, d).expect("valid by construction")
            })
    })
}

/// Strategy: a random unrestricted UCDDCP instance.
fn ucddcp_instance(max_n: usize) -> impl Strategy<Value = Instance> {
    (2..=max_n).prop_flat_map(|n| {
        (
            prop::collection::vec((1..=20i64, 0..=10i64, 0..=15i64, 0..=10i64), n),
            0.0..0.6f64,
        )
            .prop_map(|(rows, slack)| {
                let p: Vec<Time> = rows.iter().map(|r| r.0).collect();
                let m: Vec<Time> = rows.iter().map(|r| 1 + (r.3 % r.0)).collect();
                let a: Vec<Time> = rows.iter().map(|r| r.1).collect();
                let b: Vec<Time> = rows.iter().map(|r| r.2).collect();
                let g: Vec<Time> = rows.iter().map(|r| r.3).collect();
                let total: Time = p.iter().sum();
                let d = total + (total as f64 * slack) as Time;
                Instance::ucddcp_from_arrays(&p, &m, &a, &b, &g, d)
                    .expect("valid by construction")
            })
    })
}

/// Drive a random stream of swap and insert moves against one instance:
/// every candidate is scored by the delta evaluator and must match the full
/// evaluator exactly; accepted candidates are committed (with a small
/// `resync_every` so the stream crosses several re-sync boundaries).
fn check_move_stream(inst: &Instance, seed: u64, steps: usize) {
    let n = inst.n();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seq: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        seq.swap(i, rng.gen_range(0..=i));
    }
    let mut ev = DeltaEvaluator::new(inst, &seq, 3);
    let full = evaluator_for(inst);
    assert_eq!(ev.committed_objective(), full.evaluate(&seq));
    for step in 0..steps {
        let mut cand = seq.clone();
        if rng.gen_bool(0.5) {
            // Swap move.
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(0..n);
            cand.swap(i, j);
        } else {
            // Insert move: remove at i, re-insert at j (rotates the window).
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(0..n);
            let job = cand.remove(i);
            cand.insert(j, job);
        }
        let delta_score = ev.score_sequence(&cand);
        let full_score = full.evaluate(&cand);
        assert_eq!(
            delta_score,
            full_score,
            "step {step}: delta disagrees with full eval on {:?} (n={n})",
            inst.kind()
        );
        if delta_score <= full.evaluate(&seq) {
            seq = cand;
            ev.commit(&seq);
            assert_eq!(ev.committed_objective(), full.evaluate(&seq));
        }
    }
    assert!(steps < 9 || ev.resyncs() > 0 || steps == 0 || n < 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(80))]

    #[test]
    fn cdd_delta_matches_full_eval_over_move_streams(
        inst in cdd_instance(24),
        seed in any::<u64>(),
    ) {
        check_move_stream(&inst, seed, 40);
    }

    #[test]
    fn ucddcp_delta_matches_full_eval_over_move_streams(
        inst in ucddcp_instance(24),
        seed in any::<u64>(),
    ) {
        check_move_stream(&inst, seed, 40);
    }

    /// Structurally corrupted move lists — out-of-range positions/jobs,
    /// non-permutation job substitutions — are always detected.
    #[test]
    fn corrupted_move_lists_are_rejected(
        n in 2usize..16,
        raw in prop::collection::vec((any::<u32>(), any::<u32>(), any::<u32>()), 1..6),
    ) {
        let moves: Vec<DeltaMove> = raw
            .iter()
            .map(|&(p, o, nj)| DeltaMove { pos: p % 32, old_job: o % 32, new_job: nj % 32 })
            .collect();
        let in_range = moves.iter().all(|m| {
            (m.pos as usize) < n && (m.old_job as usize) < n && (m.new_job as usize) < n
        });
        let sorted_changes = moves.windows(2).all(|w| w[0].pos < w[1].pos)
            && moves.iter().all(|m| m.old_job != m.new_job);
        let mut old: Vec<u32> = moves.iter().map(|m| m.old_job).collect();
        let mut new: Vec<u32> = moves.iter().map(|m| m.new_job).collect();
        old.sort_unstable();
        new.sort_unstable();
        prop_assert_eq!(
            moves_structurally_valid(n, &moves),
            in_range && sorted_changes && old == new,
        );
    }

    /// Bit-flipped cache state (the GPU fault-injection case) must never
    /// panic or overflow — the score is garbage but finite, and downstream
    /// clamps restore the sentinel invariants.
    #[test]
    fn corrupted_cache_state_never_panics(
        inst in ucddcp_instance(12),
        seed in any::<u64>(),
        flips in prop::collection::vec((0usize..7, any::<usize>(), any::<u64>()), 1..8),
    ) {
        let n = inst.n();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seq: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            seq.swap(i, rng.gen_range(0..=i));
        }
        let (p, m, alpha, beta, gamma) = inst.to_arrays();
        let mut state = DeltaState::default();
        state.rebuild(inst.kind(), &p, &m, &alpha, &beta, &gamma, &seq);
        for &(table, idx, bits) in &flips {
            let t = match table {
                0 => &mut state.c,
                1 => &mut state.a_pref,
                2 => &mut state.b_suff,
                3 => &mut state.wa_pref,
                4 => &mut state.wb_suff,
                5 => &mut state.gt_suff,
                _ => &mut state.ge_pref,
            };
            let slot = idx % t.len();
            t[slot] = (t[slot] as u64 ^ bits) as i64;
        }
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        let mut cand = seq.clone();
        cand.swap(i, j);
        let moves: Vec<DeltaMove> = seq
            .iter()
            .zip(&cand)
            .enumerate()
            .filter(|(_, (o, c))| o != c)
            .map(|(k, (&o, &c))| DeltaMove { pos: k as u32, old_job: o, new_job: c })
            .collect();
        let mut src = SliceDeltaSource {
            kind: inst.kind(),
            d: inst.due_date(),
            p: &p,
            m: &m,
            alpha: &alpha,
            beta: &beta,
            gamma: &gamma,
            seq: &seq,
            state: &state,
        };
        let mut ws = DeltaWorkspace::default();
        // Must terminate and produce *some* i64 — no panic, no overflow.
        let _ = delta_objective(&mut src, &moves, &mut ws);
    }
}
