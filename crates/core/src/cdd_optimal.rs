//! The O(n) fixed-sequence optimizer for the **CDD** problem
//! (Lässig, Awasthi, Kramer 2014 — reference [7] of the paper).
//!
//! For a fixed job order, an optimal schedule has no machine idle time
//! between jobs (Cheng & Kahlbacher 1991), so it is fully described by the
//! start time `s ≥ 0` of the first job. The total penalty is a convex
//! piecewise-linear function of `s`, and an optimal schedule has either
//! `s = 0` or some job completing exactly at the due date (Hall, Kubiak &
//! Sethi 1991). The paper's Theorem 1 yields the O(n) procedure implemented
//! here:
//!
//! 1. Start every job as early as possible (`s = 0`); let `τ` be the last
//!    position completing at or before `d`, `pe = Σ α` over positions
//!    `1..=τ` and `pl = Σ β` over positions `τ+1..=n`.
//! 2. If `pl ≥ pe`, shifting right cannot improve: `s = 0` is optimal.
//! 3. Otherwise shift right so position `τ` completes exactly at `d`, then
//!    keep shifting job-by-job (each shift makes position `τ` tardy and
//!    aligns position `τ−1` with `d`) while the updated sums still satisfy
//!    `pl < pe`.
//!
//! The functions in this module operate on raw parallel arrays
//! (`P`, `α`, `β` indexed by *job id*, plus the sequence `position → job`)
//! so the identical code runs inside `cuda-sim` GPU kernels and on the CPU.

use crate::{Cost, Instance, JobSequence, Time};

/// Result of optimizing one job sequence for the CDD problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CddSequenceSolution {
    /// Minimal total weighted earliness/tardiness penalty.
    pub objective: Cost,
    /// Optimal start time of the first job (the right-shift applied to the
    /// packed-at-zero schedule).
    pub shift: Time,
    /// `r`: the number of sequence positions completing at or before the due
    /// date in the optimal schedule (1-based index of the *due-date
    /// position*). If `r > 0` and the schedule was shifted, position `r`
    /// completes exactly at `d`.
    pub due_position: usize,
}

/// Compute the optimal right-shift for a packed schedule of `seq` and the
/// resulting due-date position `r` (see [`CddSequenceSolution::due_position`]).
///
/// `p`, `alpha`, `beta` are indexed by **job id**; `seq[k]` is the job id
/// processed at position `k`. Runs in O(n) with zero allocation.
pub fn cdd_optimal_shift_raw(
    p: &[Time],
    alpha: &[Time],
    beta: &[Time],
    d: Time,
    seq: &[u32],
) -> (Time, usize) {
    // Pass 1: packed completion times; find τ (last position with C ≤ d)
    // and the penalty-rate sums on each side of the due date.
    let mut c: Time = 0;
    let mut tau: usize = 0;
    let mut c_tau: Time = 0;
    let mut pe: Time = 0;
    let mut pl: Time = 0;
    for (k, &j) in seq.iter().enumerate() {
        let j = j as usize;
        c += p[j];
        if c <= d {
            tau = k + 1;
            c_tau = c;
            pe += alpha[j];
        } else {
            pl += beta[j];
        }
    }
    if tau == 0 || pl >= pe {
        // All jobs tardy, or right-shifting gains nothing: packed is optimal.
        return (0, tau);
    }
    // Align position τ with the due date (gain (pe − pl) per unit shifted).
    let mut shift = d - c_tau;
    // Keep shifting while making position τ tardy still pays off
    // (Theorem 1, Case 2(ii)).
    while tau >= 1 {
        let j = seq[tau - 1] as usize;
        let pe_next = pe - alpha[j];
        let pl_next = pl + beta[j];
        if pl_next < pe_next {
            shift += p[j];
            pe = pe_next;
            pl = pl_next;
            tau -= 1;
        } else {
            break;
        }
    }
    (shift, tau)
}

/// Total CDD penalty of the packed schedule of `seq` right-shifted by
/// `shift`. O(n), zero allocation.
pub fn cdd_objective_with_shift(
    p: &[Time],
    alpha: &[Time],
    beta: &[Time],
    d: Time,
    seq: &[u32],
    shift: Time,
) -> Cost {
    let mut c = shift;
    let mut obj: Cost = 0;
    for &j in seq {
        let j = j as usize;
        c += p[j];
        if c < d {
            obj += alpha[j] * (d - c);
        } else {
            obj += beta[j] * (c - d);
        }
    }
    obj
}

/// Optimal CDD objective for one sequence, on raw arrays. This is the
/// *fitness function* evaluated by every metaheuristic thread (CPU and GPU).
#[inline]
pub fn cdd_objective_raw(
    p: &[Time],
    alpha: &[Time],
    beta: &[Time],
    d: Time,
    seq: &[u32],
) -> Cost {
    let (shift, _) = cdd_optimal_shift_raw(p, alpha, beta, d, seq);
    cdd_objective_with_shift(p, alpha, beta, d, seq, shift)
}

/// Optimize one job sequence of a CDD (or UCDDCP, ignoring compression)
/// instance: returns the optimal shift, due-date position and objective.
///
/// # Panics
/// Panics if `seq.len() != inst.n()` (debug builds assert the permutation
/// invariant too; [`JobSequence`] guarantees it in safe code).
pub fn optimize_cdd_sequence(inst: &Instance, seq: &JobSequence) -> CddSequenceSolution {
    assert_eq!(
        seq.len(),
        inst.n(),
        "sequence length {} does not match instance size {}",
        seq.len(),
        inst.n()
    );
    debug_assert!(seq.is_valid_permutation());
    let (p, _, a, b, _) = inst.to_arrays();
    let (shift, r) = cdd_optimal_shift_raw(&p, &a, &b, inst.due_date(), seq.as_slice());
    let objective = cdd_objective_with_shift(&p, &a, &b, inst.due_date(), seq.as_slice(), shift);
    CddSequenceSolution { objective, shift, due_position: r }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Instance;

    /// The paper's worked example (Section IV-A): data of Table I, d = 16,
    /// identity sequence. The paper walks the algorithm to an optimum of 81
    /// with job 2 (1-based) finishing at the due date.
    #[test]
    fn paper_illustration_reaches_81() {
        let inst = Instance::paper_example_cdd();
        let seq = JobSequence::identity(5);
        let sol = optimize_cdd_sequence(&inst, &seq);
        assert_eq!(sol.objective, 81);
        // Final schedule: C = {11, 16, 18, 22, 26} → shift 5, job at position
        // 2 (1-based) completes at d = 16.
        assert_eq!(sol.shift, 5);
        assert_eq!(sol.due_position, 2);
    }

    /// Intermediate quantities of the paper's walk-through: packed completion
    /// times {6,11,13,17,21}, DT = {-10,-5,-3,1,5}, pe = 22, pl = 5.
    #[test]
    fn paper_illustration_packed_penalty() {
        let inst = Instance::paper_example_cdd();
        let (p, _, a, b, _) = inst.to_arrays();
        let seq = JobSequence::identity(5);
        // Packed (shift 0): E = {10,5,3}, T = {1,5}
        // → 7·10 + 9·5 + 6·3 + 3·1 + 2·5 = 70+45+18+3+10 = 146.
        let packed = cdd_objective_with_shift(&p, &a, &b, 16, seq.as_slice(), 0);
        assert_eq!(packed, 146);
        // After the first alignment (shift 3): job 3 at d.
        let aligned = cdd_objective_with_shift(&p, &a, &b, 16, seq.as_slice(), 3);
        // E = {7,2,0}, T = {4,8} → 49+18+0+12+16 = 95.
        assert_eq!(aligned, 95);
    }

    #[test]
    fn all_tardy_when_due_date_zero() {
        let inst = Instance::cdd_from_arrays(&[3, 2], &[5, 5], &[1, 1], 0).unwrap();
        let seq = JobSequence::identity(2);
        let sol = optimize_cdd_sequence(&inst, &seq);
        assert_eq!(sol.shift, 0);
        assert_eq!(sol.due_position, 0);
        // C = {3,5}: T = {3,5} → 3+5 = 8.
        assert_eq!(sol.objective, 8);
    }

    #[test]
    fn no_shift_when_tardiness_dominates() {
        // β large: packing at zero is optimal even though job 1 is early.
        let inst = Instance::cdd_from_arrays(&[2, 2], &[1, 1], &[100, 100], 3).unwrap();
        let sol = optimize_cdd_sequence(&inst, &JobSequence::identity(2));
        assert_eq!(sol.shift, 0);
        // C = {2,4}: E1 = 1 → 1, T2 = 1 → 100. Total 101.
        assert_eq!(sol.objective, 101);
    }

    #[test]
    fn unrestricted_all_alpha_zero_stays_packed() {
        // Earliness free: packed schedule already costs 0.
        let inst = Instance::cdd_from_arrays(&[4, 4], &[0, 0], &[7, 7], 100).unwrap();
        let sol = optimize_cdd_sequence(&inst, &JobSequence::identity(2));
        assert_eq!(sol.objective, 0);
        assert_eq!(sol.shift, 0);
        assert_eq!(sol.due_position, 2);
    }

    #[test]
    fn unrestricted_shifts_to_due_date() {
        // One job, huge due date: job should complete exactly at d.
        let inst = Instance::cdd_from_arrays(&[5], &[3], &[4], 50).unwrap();
        let sol = optimize_cdd_sequence(&inst, &JobSequence::identity(1));
        assert_eq!(sol.objective, 0);
        assert_eq!(sol.shift, 45);
        assert_eq!(sol.due_position, 1);
    }

    #[test]
    fn single_job_restricted() {
        let inst = Instance::cdd_from_arrays(&[10], &[3], &[4], 4).unwrap();
        let sol = optimize_cdd_sequence(&inst, &JobSequence::identity(1));
        // C = 10 > 4 always (cannot start before 0): T = 6 → 24.
        assert_eq!(sol.objective, 24);
        assert_eq!(sol.shift, 0);
        assert_eq!(sol.due_position, 0);
    }

    #[test]
    fn sequence_order_matters() {
        let inst = Instance::paper_example_cdd();
        let a = optimize_cdd_sequence(&inst, &JobSequence::identity(5)).objective;
        let b = optimize_cdd_sequence(
            &inst,
            &JobSequence::from_vec(vec![4, 3, 2, 1, 0]).unwrap(),
        )
        .objective;
        assert_ne!(a, b);
    }

    #[test]
    fn tie_between_shift_and_no_shift_is_consistent() {
        // pe == pl: both packed and shifted schedules are optimal; the
        // algorithm must return the packed one and still be optimal.
        let inst = Instance::cdd_from_arrays(&[2, 2], &[3, 0], &[0, 3], 2).unwrap();
        let sol = optimize_cdd_sequence(&inst, &JobSequence::identity(2));
        assert_eq!(sol.shift, 0);
        // C = {2,4}: job 1 on time (E = 0), job 2 tardy by 2 → β·T = 3·2 = 6.
        assert_eq!(sol.objective, 6);
    }

    #[test]
    #[should_panic(expected = "sequence length")]
    fn mismatched_sequence_length_panics() {
        let inst = Instance::paper_example_cdd();
        optimize_cdd_sequence(&inst, &JobSequence::identity(3));
    }
}
