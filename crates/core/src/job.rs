//! The [`Job`] record: one task to be scheduled on the single machine.

use crate::{CoreError, Time};

/// A single job of a CDD / UCDDCP instance.
///
/// Field names follow the paper's Section II notation:
///
/// | field                 | paper | meaning                                      |
/// |-----------------------|-------|----------------------------------------------|
/// | `processing`          | `Pᵢ`  | normal processing time                       |
/// | `min_processing`      | `Mᵢ`  | minimum (fully compressed) processing time   |
/// | `earliness_penalty`   | `αᵢ`  | penalty per time unit of earliness           |
/// | `tardiness_penalty`   | `βᵢ`  | penalty per time unit of tardiness           |
/// | `compression_penalty` | `γᵢ`  | penalty per time unit of compression         |
///
/// For plain CDD instances `min_processing == processing` (no compression is
/// possible) and `compression_penalty` is irrelevant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Job {
    /// Normal processing time `Pᵢ ≥ 1`.
    pub processing: Time,
    /// Minimum processing time `1 ≤ Mᵢ ≤ Pᵢ` reachable by compression.
    pub min_processing: Time,
    /// Earliness penalty rate `αᵢ ≥ 0`.
    pub earliness_penalty: Time,
    /// Tardiness penalty rate `βᵢ ≥ 0`.
    pub tardiness_penalty: Time,
    /// Compression penalty rate `γᵢ ≥ 0`.
    pub compression_penalty: Time,
}

impl Job {
    /// Build a plain CDD job (not compressible: `Mᵢ = Pᵢ`, `γᵢ = 0`).
    pub fn cdd(processing: Time, earliness_penalty: Time, tardiness_penalty: Time) -> Self {
        Job {
            processing,
            min_processing: processing,
            earliness_penalty,
            tardiness_penalty,
            compression_penalty: 0,
        }
    }

    /// Build a fully specified UCDDCP job.
    pub fn ucddcp(
        processing: Time,
        min_processing: Time,
        earliness_penalty: Time,
        tardiness_penalty: Time,
        compression_penalty: Time,
    ) -> Self {
        Job {
            processing,
            min_processing,
            earliness_penalty,
            tardiness_penalty,
            compression_penalty,
        }
    }

    /// Maximum possible compression `Pᵢ − Mᵢ` (the upper bound on `Xᵢ`).
    #[inline]
    pub fn max_compression(&self) -> Time {
        self.processing - self.min_processing
    }

    /// Validate the job's fields, reporting `job_index` in any error.
    pub fn validate(&self, job_index: usize) -> Result<(), CoreError> {
        if self.processing < 1 {
            return Err(CoreError::NonPositiveProcessingTime {
                job: job_index,
                value: self.processing,
            });
        }
        if self.min_processing < 1 || self.min_processing > self.processing {
            return Err(CoreError::InvalidMinProcessingTime {
                job: job_index,
                min: self.min_processing,
                processing: self.processing,
            });
        }
        for (name, value) in [
            ("earliness", self.earliness_penalty),
            ("tardiness", self.tardiness_penalty),
            ("compression", self.compression_penalty),
        ] {
            if value < 0 {
                return Err(CoreError::NegativePenalty { job: job_index, name, value });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdd_job_is_incompressible() {
        let j = Job::cdd(7, 2, 3);
        assert_eq!(j.max_compression(), 0);
        assert_eq!(j.min_processing, 7);
        j.validate(0).unwrap();
    }

    #[test]
    fn ucddcp_job_reports_max_compression() {
        let j = Job::ucddcp(6, 4, 1, 2, 3);
        assert_eq!(j.max_compression(), 2);
        j.validate(0).unwrap();
    }

    #[test]
    fn validation_rejects_zero_processing() {
        let j = Job::cdd(0, 1, 1);
        assert_eq!(
            j.validate(4),
            Err(CoreError::NonPositiveProcessingTime { job: 4, value: 0 })
        );
    }

    #[test]
    fn validation_rejects_min_above_processing() {
        let j = Job::ucddcp(5, 6, 1, 1, 1);
        assert!(matches!(
            j.validate(1),
            Err(CoreError::InvalidMinProcessingTime { job: 1, .. })
        ));
    }

    #[test]
    fn validation_rejects_zero_min() {
        let j = Job::ucddcp(5, 0, 1, 1, 1);
        assert!(matches!(j.validate(0), Err(CoreError::InvalidMinProcessingTime { .. })));
    }

    #[test]
    fn validation_rejects_negative_penalties() {
        assert!(matches!(
            Job::cdd(5, -1, 1).validate(0),
            Err(CoreError::NegativePenalty { name: "earliness", .. })
        ));
        assert!(matches!(
            Job::cdd(5, 1, -1).validate(0),
            Err(CoreError::NegativePenalty { name: "tardiness", .. })
        ));
        assert!(matches!(
            Job::ucddcp(5, 5, 1, 1, -2).validate(0),
            Err(CoreError::NegativePenalty { name: "compression", .. })
        ));
    }
}
