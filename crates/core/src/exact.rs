//! Brute-force reference solvers used to validate the O(n) algorithms and
//! the metaheuristics on small instances.
//!
//! * [`cdd_objective_bruteforce`] — optimal shift of a fixed sequence by
//!   exhaustive breakpoint scan (O(n²)); independent of Theorem 1.
//! * [`ucddcp_objective_bruteforce`] — optimal compressions + shift of a
//!   fixed sequence by enumerating all 2ⁿ full-compression subsets × all
//!   shift breakpoints; independent of Properties 1–2 except for using the
//!   full-or-nothing compression structure (the `cdd-lp` crate provides the
//!   fully continuous LP cross-check).
//! * [`best_sequence_bruteforce`] — global optimum over all n! sequences
//!   (n ≤ 10 guarded), for validating metaheuristic convergence.

use crate::cdd_optimal::cdd_objective_with_shift;
use crate::ucddcp_optimal::ucddcp_objective_raw;
use crate::{Cost, Instance, JobSequence, ProblemKind, Time};

/// Maximum `n` accepted by the exponential/factorial searches.
pub const BRUTE_FORCE_MAX_N: usize = 12;

/// Optimal CDD objective of a fixed sequence by evaluating every breakpoint
/// of the piecewise-linear penalty function: `s = 0` and every shift that
/// aligns some completion time with the due date. O(n²).
pub fn cdd_objective_bruteforce(inst: &Instance, seq: &JobSequence) -> Cost {
    let (p, _, a, b, _) = inst.to_arrays();
    let d = inst.due_date();
    let s = seq.as_slice();
    let mut best = cdd_objective_with_shift(&p, &a, &b, d, s, 0);
    let mut c: Time = 0;
    for &j in s {
        c += p[j as usize];
        let shift = d - c;
        if shift > 0 {
            best = best.min(cdd_objective_with_shift(&p, &a, &b, d, s, shift));
        }
    }
    best
}

/// Optimal UCDDCP objective of a fixed sequence by exhaustive enumeration of
/// all full-compression subsets, re-optimizing the shift for each. O(2ⁿ·n²).
///
/// # Panics
/// Panics if `inst.n() > BRUTE_FORCE_MAX_N` or the instance is not UCDDCP.
pub fn ucddcp_objective_bruteforce(inst: &Instance, seq: &JobSequence) -> Cost {
    assert_eq!(inst.kind(), ProblemKind::Ucddcp, "requires a UCDDCP instance");
    assert!(
        inst.n() <= BRUTE_FORCE_MAX_N,
        "brute force limited to n <= {BRUTE_FORCE_MAX_N}, got {}",
        inst.n()
    );
    let (p, m, a, b, g) = inst.to_arrays();
    let d = inst.due_date();
    let s = seq.as_slice();
    let n = inst.n();

    let mut best = Cost::MAX;
    let mut cp = vec![0 as Time; n]; // compressed processing times, by job id
    for mask in 0u32..(1 << n) {
        let mut compression_cost: Cost = 0;
        for j in 0..n {
            if mask & (1 << j) != 0 {
                cp[j] = m[j];
                compression_cost += g[j] * (p[j] - m[j]);
            } else {
                cp[j] = p[j];
            }
        }
        // Optimal shift for the compressed processing times.
        let mut local = cdd_objective_with_shift(&cp, &a, &b, d, s, 0);
        let mut c: Time = 0;
        for &j in s {
            c += cp[j as usize];
            let shift = d - c;
            if shift > 0 {
                local = local.min(cdd_objective_with_shift(&cp, &a, &b, d, s, shift));
            }
        }
        best = best.min(local + compression_cost);
    }
    best
}

/// Evaluate the optimal fixed-sequence objective of `seq` for `inst`,
/// dispatching on the problem kind, using the **O(n)** algorithms.
pub fn optimal_sequence_objective(inst: &Instance, seq: &JobSequence) -> Cost {
    match inst.kind() {
        ProblemKind::Cdd => crate::optimize_cdd_sequence(inst, seq).objective,
        ProblemKind::Ucddcp => {
            let (p, m, a, b, g) = inst.to_arrays();
            ucddcp_objective_raw(&p, &m, &a, &b, &g, inst.due_date(), seq.as_slice())
        }
    }
}

/// Globally optimal sequence and objective by enumerating all n!
/// permutations (each evaluated with the O(n) fixed-sequence optimizer).
///
/// # Panics
/// Panics if `inst.n() > 10`.
pub fn best_sequence_bruteforce(inst: &Instance) -> (JobSequence, Cost) {
    assert!(inst.n() <= 10, "factorial search limited to n <= 10, got {}", inst.n());
    let n = inst.n();
    let mut perm: Vec<u32> = (0..n as u32).collect();
    let mut best_perm = perm.clone();
    let mut best = Cost::MAX;

    // Heap's algorithm, iterative form.
    let mut c = vec![0usize; n];
    let eval = |perm: &[u32], best: &mut Cost, best_perm: &mut Vec<u32>| {
        let seq = JobSequence::from_vec(perm.to_vec()).expect("permutation by construction");
        let obj = optimal_sequence_objective(inst, &seq);
        if obj < *best {
            *best = obj;
            best_perm.copy_from_slice(perm);
        }
    };
    eval(&perm, &mut best, &mut best_perm);
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                perm.swap(0, i);
            } else {
                perm.swap(c[i], i);
            }
            eval(&perm, &mut best, &mut best_perm);
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    (JobSequence::from_vec(best_perm).expect("permutation by construction"), best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{optimize_cdd_sequence, Instance};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_cdd(n: usize, d_factor: f64, rng: &mut StdRng) -> Instance {
        let p: Vec<Time> = (0..n).map(|_| rng.gen_range(1..=20)).collect();
        let a: Vec<Time> = (0..n).map(|_| rng.gen_range(0..=10)).collect();
        let b: Vec<Time> = (0..n).map(|_| rng.gen_range(0..=15)).collect();
        let d = (p.iter().sum::<Time>() as f64 * d_factor) as Time;
        Instance::cdd_from_arrays(&p, &a, &b, d).unwrap()
    }

    fn random_ucddcp(n: usize, rng: &mut StdRng) -> Instance {
        let p: Vec<Time> = (0..n).map(|_| rng.gen_range(1..=20)).collect();
        let m: Vec<Time> = p.iter().map(|&pi| rng.gen_range(1..=pi)).collect();
        let a: Vec<Time> = (0..n).map(|_| rng.gen_range(0..=10)).collect();
        let b: Vec<Time> = (0..n).map(|_| rng.gen_range(0..=15)).collect();
        let g: Vec<Time> = (0..n).map(|_| rng.gen_range(0..=10)).collect();
        let total: Time = p.iter().sum();
        let d = total + rng.gen_range(0..=total / 2);
        Instance::ucddcp_from_arrays(&p, &m, &a, &b, &g, d).unwrap()
    }

    /// The O(n) CDD algorithm must match the exhaustive breakpoint scan on
    /// hundreds of random instances and sequences, restrictive and not.
    #[test]
    fn linear_cdd_matches_bruteforce() {
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..300 {
            let n = rng.gen_range(1..=12);
            let h = [0.2, 0.4, 0.6, 0.8, 1.0, 1.3][trial % 6];
            let inst = random_cdd(n, h, &mut rng);
            let seq = JobSequence::random(n, &mut rng);
            let fast = optimize_cdd_sequence(&inst, &seq).objective;
            let slow = cdd_objective_bruteforce(&inst, &seq);
            assert_eq!(fast, slow, "mismatch: inst={inst:?} seq={seq:?}");
        }
    }

    /// The O(n) UCDDCP algorithm must match the 2ⁿ enumeration.
    #[test]
    fn linear_ucddcp_matches_bruteforce() {
        let mut rng = StdRng::seed_from_u64(2016);
        for _ in 0..150 {
            let n = rng.gen_range(1..=9);
            let inst = random_ucddcp(n, &mut rng);
            let seq = JobSequence::random(n, &mut rng);
            let fast = optimal_sequence_objective(&inst, &seq);
            let slow = ucddcp_objective_bruteforce(&inst, &seq);
            assert_eq!(fast, slow, "mismatch: inst={inst:?} seq={seq:?}");
        }
    }

    #[test]
    fn paper_examples_match_bruteforce() {
        let inst = Instance::paper_example_cdd();
        let seq = JobSequence::identity(5);
        assert_eq!(cdd_objective_bruteforce(&inst, &seq), 81);

        let inst = Instance::paper_example_ucddcp();
        assert_eq!(ucddcp_objective_bruteforce(&inst, &seq), 77);
    }

    #[test]
    fn best_sequence_is_at_most_identity() {
        let inst = Instance::paper_example_cdd();
        let (best_seq, best) = best_sequence_bruteforce(&inst);
        assert!(best <= 81);
        assert!(best_seq.is_valid_permutation());
        assert_eq!(optimal_sequence_objective(&inst, &best_seq), best);
    }

    #[test]
    fn best_sequence_single_job() {
        let inst = Instance::cdd_from_arrays(&[5], &[1], &[1], 3).unwrap();
        let (seq, obj) = best_sequence_bruteforce(&inst);
        assert_eq!(seq.len(), 1);
        assert_eq!(obj, 2); // C = 5, T = 2, β = 1.
    }

    #[test]
    #[should_panic(expected = "factorial search")]
    fn factorial_search_guards_large_n() {
        let mut rng = StdRng::seed_from_u64(1);
        let inst = random_cdd(11, 0.5, &mut rng);
        best_sequence_bruteforce(&inst);
    }
}
