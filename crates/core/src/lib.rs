//! # cdd-core
//!
//! Problem model and fixed-sequence optimizers for two NP-hard single-machine
//! scheduling problems studied in *"GPGPU-based Parallel Algorithms for
//! Scheduling Against Due Date"* (Awasthi, Lässig, Leuschner, Weise —
//! IPDPSW/PCO 2016):
//!
//! * **CDD** — the Common Due-Date problem: sequence `n` jobs on a single
//!   machine against a common due date `d`, minimizing the total weighted
//!   earliness/tardiness penalty `Σ (αᵢ·Eᵢ + βᵢ·Tᵢ)`.
//! * **UCDDCP** — the Unrestricted CDD with Controllable Processing Times:
//!   additionally, each job's processing time may be *compressed* from `Pᵢ`
//!   down to `Mᵢ` at a cost of `γᵢ` per time unit, adding `Σ γᵢ·Xᵢ` to the
//!   objective. "Unrestricted" means `d ≥ Σ Pᵢ`.
//!
//! The paper's **two-layered approach** splits each problem into
//!
//! 1. a *sequence search* (NP-hard — handled by metaheuristics in the
//!    `cdd-meta` / `cdd-gpu` crates), and
//! 2. a *fixed-sequence subproblem* — given a job order, find optimal
//!    completion times (and compressions). This crate implements the
//!    **O(n) deterministic algorithms** for that subproblem:
//!    [`cdd_optimal::optimize_cdd_sequence`] (Lässig et al. 2014) and
//!    [`ucddcp_optimal::optimize_ucddcp_sequence`] (Awasthi et al. 2015).
//!
//! Brute-force reference solvers for validation live in [`exact`]; the
//! `cdd-lp` crate provides an independent simplex-LP cross-check.
//!
//! ## Quick example
//!
//! ```
//! use cdd_core::{Instance, JobSequence};
//!
//! // The 5-job illustrative example of the paper (Table I), d = 16.
//! let inst = Instance::cdd_from_arrays(
//!     &[6, 5, 2, 4, 4],       // processing times Pᵢ
//!     &[7, 9, 6, 9, 3],       // earliness penalties αᵢ
//!     &[9, 5, 4, 3, 2],       // tardiness penalties βᵢ
//!     16,                     // common due date d
//! ).unwrap();
//! let seq = JobSequence::identity(5);
//! let sol = cdd_core::optimize_cdd_sequence(&inst, &seq);
//! assert_eq!(sol.objective, 81); // the paper's worked result
//! ```

pub mod cdd_optimal;
pub mod delta;
pub mod error;
pub mod eval;
pub mod exact;
pub mod heuristics;
pub mod instance;
pub mod job;
pub mod schedule;
pub mod sequence;
pub mod solve;
pub mod ucddcp_optimal;

pub use cdd_optimal::{optimize_cdd_sequence, CddSequenceSolution};
pub use delta::{
    delta_objective, moves_structurally_valid, DeltaEvaluator, DeltaMove, DeltaSource, DeltaState,
    DeltaWorkspace, SliceDeltaSource,
};
pub use error::{CoreError, SuiteError};
pub use eval::{CddEvaluator, SequenceEvaluator, UcddcpEvaluator};
pub use instance::{Instance, ProblemKind};
pub use job::Job;
pub use schedule::Schedule;
pub use sequence::JobSequence;
pub use solve::{degraded_outcome, Algorithm, Priority, SolveOutcome, SolveRequest, TraceContext};
pub use ucddcp_optimal::{optimize_ucddcp_sequence, UcddcpSequenceSolution};

/// Integer time/penalty scalar used throughout the suite.
///
/// The OR-library benchmark data is integral (processing times in `[1,20]`,
/// penalty rates in `[1,15]`), so all schedules, shifts and objectives are
/// exact integers. `i64` comfortably holds any objective arising from
/// `n ≤ 10⁶` jobs with these magnitudes.
pub type Time = i64;

/// Objective (total weighted penalty) scalar. Alias of [`Time`].
pub type Cost = i64;
