//! Incremental (delta) fitness evaluation for swap/insert moves.
//!
//! The O(n) fixed-sequence optimizers in [`crate::cdd_optimal`] /
//! [`crate::ucddcp_optimal`] re-walk the whole sequence for every candidate
//! the metaheuristics propose, yet a swap or insert move only changes a
//! handful of positions. The per-sequence polynomial structure (Awasthi /
//! Lässig / Kramer, arXiv:1311.2879) decomposes the objective into prefix /
//! suffix sums over the *committed* sequence, so a move can be scored from
//! cached state plus per-changed-position corrections:
//!
//! * **CDD** — `O(m log n)` for `m` changed positions: two binary searches
//!   (due position and earliness/tardiness split over the piecewise-shifted
//!   completion times) plus `O(m)` correction terms, plus the optimal-shift
//!   walk (short in practice: it terminates at the first position whose
//!   earliness rate stops dominating).
//! * **UCDDCP** — additionally `O(window)` where `window` is the span
//!   between the first and last changed position: the compression-gain
//!   terms depend on suffix-β / prefix-α sums that shift *inside* the
//!   window, and threshold crossings there cannot be pre-aggregated.
//!
//! The cached state is exact integer arithmetic — there is no numeric
//! drift. The periodic re-sync knob ([`DeltaEvaluator::new`]'s
//! `resync_every`, and the GPU pipelines' `DeltaConfig::resync_every`)
//! exists for the *fault-injection* story: on the simulated device the
//! cached arrays live in global memory where bit flips can corrupt them,
//! and a forced rebuild bounds how long corrupted cache state can survive.
//!
//! The scoring core is generic over [`DeltaSource`] so the exact same
//! arithmetic runs on the host (slice-backed, used by [`DeltaEvaluator`]
//! and the proptest equivalence suite) and inside the simulated GPU kernel
//! (device-buffer-backed, charging modeled reads per access).

use crate::{Cost, Instance, ProblemKind, Time};

/// One changed position of a candidate sequence relative to the committed
/// one: position `pos` held `old_job` and would hold `new_job`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaMove {
    /// Position in the sequence (0-based).
    pub pos: u32,
    /// Job currently at `pos` in the committed sequence.
    pub old_job: u32,
    /// Job the candidate places at `pos`.
    pub new_job: u32,
}

/// Read access to the committed-sequence cache and the instance data,
/// abstracted so the delta scoring core runs identically on host slices
/// and on simulated device buffers (where each read charges modeled cost).
///
/// Methods take `&mut self` purely so device-backed sources can charge the
/// cost model; slice-backed sources just read.
pub trait DeltaSource {
    /// Number of jobs.
    fn n(&self) -> usize;
    /// Common due date.
    fn d(&self) -> Time;
    /// Problem kind (selects the compression-gain passes).
    fn kind(&self) -> ProblemKind;
    /// Processing time of job `job`.
    fn p(&mut self, job: usize) -> Time;
    /// Earliness rate of job `job`.
    fn alpha(&mut self, job: usize) -> Time;
    /// Tardiness rate of job `job`.
    fn beta(&mut self, job: usize) -> Time;
    /// Compression rate of job `job` (UCDDCP; unused for CDD).
    fn gamma(&mut self, job: usize) -> Time;
    /// Maximum compression `Pⱼ − Mⱼ` of job `job` (UCDDCP; unused for CDD).
    fn slack(&mut self, job: usize) -> Time;
    /// Committed job at position `k`.
    fn seq(&mut self, k: usize) -> u32;
    /// Cached packed completion time of position `k` (`k < n`).
    fn c(&mut self, k: usize) -> Time;
    /// Cached `Σ_{t<k} α` over committed positions (`k ≤ n`).
    fn a_pref(&mut self, k: usize) -> Time;
    /// Cached `Σ_{t≥k} β` over committed positions (`k ≤ n`).
    fn b_suff(&mut self, k: usize) -> Time;
    /// Cached `Σ_{t<k} α_t·C_t` (`k ≤ n`).
    fn wa_pref(&mut self, k: usize) -> Time;
    /// Cached `Σ_{t≥k} β_t·C_t` (`k ≤ n`).
    fn wb_suff(&mut self, k: usize) -> Time;
    /// Cached suffix sums of the tardy-side compression gains (`k ≤ n`).
    fn gt_suff(&mut self, k: usize) -> Time;
    /// Cached prefix sums of the early-side compression gains (`k ≤ n`).
    fn ge_pref(&mut self, k: usize) -> Time;
    /// Charge `alu` units of pure arithmetic to the cost model (no-op on
    /// host sources).
    fn tick(&mut self, _alu: u64) {}
}

/// The cached prefix/suffix state of one committed sequence.
///
/// All vectors are indexed by *position*: `c` has length `n` (packed
/// completion times), the six sum tables have length `n + 1` so that both
/// the empty prefix (`k = 0`) and the empty suffix (`k = n`) are addressable.
/// For CDD instances the two gain tables are zero-filled.
#[derive(Debug, Clone, Default)]
pub struct DeltaState {
    /// Packed completion time of position `k` (strictly increasing, `p ≥ 1`).
    pub c: Vec<Time>,
    /// `a_pref[k] = Σ_{t<k} α_{seq[t]}`.
    pub a_pref: Vec<Time>,
    /// `b_suff[k] = Σ_{t≥k} β_{seq[t]}`.
    pub b_suff: Vec<Time>,
    /// `wa_pref[k] = Σ_{t<k} α_{seq[t]}·c[t]`.
    pub wa_pref: Vec<Time>,
    /// `wb_suff[k] = Σ_{t≥k} β_{seq[t]}·c[t]`.
    pub wb_suff: Vec<Time>,
    /// `gt_suff[k] = Σ_{t≥k} Gᵗ(t)` — tardy-side compression gains, where
    /// `Gᵗ(t) = xₜ·max(0, b_suff[t] − γₜ)` when `xₜ = Pₜ − Mₜ > 0`.
    pub gt_suff: Vec<Time>,
    /// `ge_pref[k] = Σ_{t<k} Gᵉ(t)` — early-side compression gains, where
    /// `Gᵉ(t) = xₜ·max(0, a_pref[t] − γₜ)` when `xₜ > 0`.
    pub ge_pref: Vec<Time>,
}

impl DeltaState {
    /// Rebuild the whole cache from the per-job arrays and a committed
    /// sequence — the O(n) "commit" both the host evaluator and the GPU
    /// kernel's rebuild path share.
    #[allow(clippy::too_many_arguments)]
    pub fn rebuild(
        &mut self,
        kind: ProblemKind,
        p: &[Time],
        m: &[Time],
        alpha: &[Time],
        beta: &[Time],
        gamma: &[Time],
        seq: &[u32],
    ) {
        let n = seq.len();
        self.c.clear();
        self.c.resize(n, 0);
        for v in [
            &mut self.a_pref,
            &mut self.b_suff,
            &mut self.wa_pref,
            &mut self.wb_suff,
            &mut self.gt_suff,
            &mut self.ge_pref,
        ] {
            v.clear();
            v.resize(n + 1, 0);
        }
        let mut c = 0;
        for (k, &sj) in seq.iter().enumerate() {
            let j = sj as usize;
            c += p[j];
            self.c[k] = c;
            self.a_pref[k + 1] = self.a_pref[k] + alpha[j];
            self.wa_pref[k + 1] = self.wa_pref[k] + alpha[j] * c;
        }
        for k in (0..n).rev() {
            let j = seq[k] as usize;
            self.b_suff[k] = self.b_suff[k + 1] + beta[j];
            self.wb_suff[k] = self.wb_suff[k + 1] + beta[j] * self.c[k];
        }
        if kind == ProblemKind::Ucddcp {
            for k in (0..n).rev() {
                let j = seq[k] as usize;
                let x = p[j] - m[j];
                let over = self.b_suff[k] - gamma[j];
                let g = if x > 0 && over > 0 { x * over } else { 0 };
                self.gt_suff[k] = self.gt_suff[k + 1] + g;
            }
            for (k, &sj) in seq.iter().enumerate() {
                let j = sj as usize;
                let x = p[j] - m[j];
                let over = self.a_pref[k] - gamma[j];
                let g = if x > 0 && over > 0 { x * over } else { 0 };
                self.ge_pref[k + 1] = self.ge_pref[k] + g;
            }
        }
    }
}

/// Structural validation of a move list against a sequence length: positions
/// strictly increasing and in range, job ids in range, every move a real
/// change, and the old/new jobs a permutation of each other (a move list
/// violating any of these cannot come from a swap/shuffle of a valid
/// permutation — on the GPU fault path it marks a corrupted candidate).
pub fn moves_structurally_valid(n: usize, moves: &[DeltaMove]) -> bool {
    let mut last: Option<u32> = None;
    for mv in moves {
        if mv.pos as usize >= n || mv.old_job as usize >= n || mv.new_job as usize >= n {
            return false;
        }
        if mv.old_job == mv.new_job {
            return false;
        }
        if let Some(prev) = last {
            if mv.pos <= prev {
                return false;
            }
        }
        last = Some(mv.pos);
    }
    // Multiset equality of old vs new jobs (m is tiny: O(m²) matching).
    let mut used = [false; 64];
    let mut used_vec;
    let used: &mut [bool] = if moves.len() <= 64 {
        &mut used[..moves.len()]
    } else {
        used_vec = vec![false; moves.len()];
        &mut used_vec
    };
    for mv in moves {
        let mut found = false;
        for (i, other) in moves.iter().enumerate() {
            if !used[i] && other.old_job == mv.new_job {
                used[i] = true;
                found = true;
                break;
            }
        }
        if !found {
            return false;
        }
    }
    true
}

/// Per-move working row: instance data read once, plus running cumulative
/// deltas (`Σ Δp` over moves up to here, `Σ Δα` likewise, `Σ Δβ` from here
/// to the end). All deltas are widened to `i128` so that fault-corrupted
/// cache reads can never overflow host arithmetic (the GPU kernel clamps
/// the final value to the `CORRUPT_ENERGY` sentinel range).
#[derive(Debug, Clone, Copy, Default)]
struct MoveRow {
    pos: usize,
    new_job: u32,
    c_pos: i128,
    alpha_old: i128,
    alpha_new: i128,
    beta_old: i128,
    beta_new: i128,
    /// `Σ_{t≤i} (P_new − P_old)` — completion-time delta for `k ≥ pos_i`.
    dp_cum: i128,
    /// `Σ_{t≤i} (α_new − α_old)` — prefix-α delta for `k > pos_i`.
    da_cum: i128,
    /// `Σ_{t≥i} (β_new − β_old)` — suffix-β delta for `k ≤ pos_i`.
    db_tail: i128,
}

/// Reusable scratch for [`delta_objective`] so steady-state scoring does
/// zero allocation (both the host evaluator and each GPU thread's scratch
/// slot hold one).
#[derive(Debug, Clone, Default)]
pub struct DeltaWorkspace {
    rows: Vec<MoveRow>,
}

/// `Σ Δp` over moves with `pos ≤ k`.
fn dp_le(rows: &[MoveRow], k: usize) -> i128 {
    let mut v = 0;
    for r in rows {
        if r.pos <= k {
            v = r.dp_cum;
        } else {
            break;
        }
    }
    v
}

/// `Σ Δα` over moves with `pos < k`.
fn da_lt(rows: &[MoveRow], k: usize) -> i128 {
    let mut v = 0;
    for r in rows {
        if r.pos < k {
            v = r.da_cum;
        } else {
            break;
        }
    }
    v
}

/// `Σ Δβ` over moves with `pos ≥ k`.
fn db_ge(rows: &[MoveRow], k: usize) -> i128 {
    for r in rows {
        if r.pos >= k {
            return r.db_tail;
        }
    }
    0
}

/// Score a candidate sequence described as the committed sequence plus a
/// sorted list of changed positions, from cached state only.
///
/// `moves` must satisfy [`moves_structurally_valid`] and `old_job` must
/// match the committed sequence at each position (debug-asserted; the GPU
/// kernel enforces it with the fault sentinel instead). An empty move list
/// returns the committed objective.
///
/// The arithmetic is internally `i128` and the result saturates into
/// `i64`: corrupted cache values (GPU fault injection) produce a wrong but
/// *finite* score, never UB or a panic, and downstream clamps restore the
/// sentinel invariants.
pub fn delta_objective<S: DeltaSource>(
    src: &mut S,
    moves: &[DeltaMove],
    ws: &mut DeltaWorkspace,
) -> Cost {
    let n = src.n();
    let d = src.d() as i128;
    debug_assert!(moves_structurally_valid(n, moves), "invalid move list: {moves:?}");

    // Pass 0: read each move's instance data once and build cumulative
    // delta tables.
    ws.rows.clear();
    let mut dp = 0i128;
    let mut da = 0i128;
    // NOTE: no read-backed asserts here — on the simulated device every
    // `src` access charges the cost model (and, under fault injection, can
    // flip), so debug-only re-reads would skew modeled time between build
    // profiles and panic on corrupted-but-clamped inputs. Consistency of
    // `old_job` with the committed row is the caller's contract.
    for mv in moves {
        let (oj, nj) = (mv.old_job as usize, mv.new_job as usize);
        dp += src.p(nj) as i128 - src.p(oj) as i128;
        let alpha_old = src.alpha(oj) as i128;
        let alpha_new = src.alpha(nj) as i128;
        da += alpha_new - alpha_old;
        ws.rows.push(MoveRow {
            pos: mv.pos as usize,
            new_job: mv.new_job,
            c_pos: src.c(mv.pos as usize) as i128,
            alpha_old,
            alpha_new,
            beta_old: src.beta(oj) as i128,
            beta_new: src.beta(nj) as i128,
            dp_cum: dp,
            da_cum: da,
            db_tail: 0,
        });
        src.tick(8);
    }
    let mut db = 0i128;
    for r in ws.rows.iter_mut().rev() {
        db += r.beta_new - r.beta_old;
        r.db_tail = db;
        src.tick(2);
    }
    let rows = &ws.rows[..];
    // Multiset equality makes the total deltas vanish beyond the window
    // (not asserted: fault-flipped device reads may break it, and the
    // arithmetic below stays finite regardless).

    // Pass 1: the candidate's due position τ' = #{k : c'(k) ≤ d}, where
    // c'(k) = c(k) + Σ_{pos ≤ k} Δp is still strictly increasing.
    let mut lo = 0usize;
    let mut hi = n;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if src.c(mid) as i128 + dp_le(rows, mid) <= d {
            lo = mid + 1;
        } else {
            hi = mid;
        }
        src.tick(4);
    }
    let tau = lo;

    // Pass 2: optimal shift — identical walk to `cdd_optimal_shift_raw`,
    // reading the candidate's jobs (committed row with moved positions
    // substituted) and the delta-corrected penalty-rate splits.
    let mut shift = 0i128;
    let mut r_pos = tau;
    if tau > 0 {
        let mut pe = src.a_pref(tau) as i128 + da_lt(rows, tau);
        let mut pl = src.b_suff(tau) as i128 + db_ge(rows, tau);
        src.tick(4);
        if pl < pe {
            let c_tau = src.c(tau - 1) as i128 + dp_le(rows, tau - 1);
            shift = d - c_tau;
            let mut t = tau;
            while t >= 1 {
                let k = t - 1;
                let j = match rows.iter().find(|r| r.pos == k) {
                    Some(r) => r.new_job as usize,
                    None => src.seq(k) as usize,
                };
                let pe_next = pe - src.alpha(j) as i128;
                let pl_next = pl + src.beta(j) as i128;
                src.tick(6);
                if pl_next < pe_next {
                    shift += src.p(j) as i128;
                    pe = pe_next;
                    pl = pl_next;
                    t -= 1;
                } else {
                    break;
                }
            }
            r_pos = t;
        }
    }

    // Pass 3: CDD objective from the weighted prefix/suffix tables. Split
    // point e = #{k : c'(k) + shift < d}; positions below are early
    // (contribute α·(d − s − c')), the rest tardy (β·(c' + s − d)).
    let mut lo = 0usize;
    let mut hi = n;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if src.c(mid) as i128 + dp_le(rows, mid) + shift < d {
            lo = mid + 1;
        } else {
            hi = mid;
        }
        src.tick(4);
    }
    let e = lo;

    let a_e = src.a_pref(e) as i128 + da_lt(rows, e);
    let b_e = src.b_suff(e) as i128 + db_ge(rows, e);
    let mut wa_e = src.wa_pref(e) as i128;
    let mut wb_e = src.wb_suff(e) as i128;
    src.tick(8);
    // Changed positions: replace the committed α·c / β·c terms exactly.
    for r in rows {
        let c_new = r.c_pos + r.dp_cum;
        if r.pos < e {
            wa_e += r.alpha_new * c_new - r.alpha_old * r.c_pos;
        } else {
            wb_e += r.beta_new * c_new - r.beta_old * r.c_pos;
        }
        src.tick(6);
    }
    // Unchanged positions inside the window: their completion shifted by a
    // per-segment constant Δp, so the correction is Δp · (Σ rates) over
    // each inter-move segment, clipped at the early/tardy split.
    for (i, r) in rows.iter().enumerate() {
        if r.dp_cum == 0 {
            continue;
        }
        let seg_end = rows.get(i + 1).map_or(n, |nx| nx.pos);
        let a = r.pos + 1;
        // Early side: positions in [a, min(seg_end, e)).
        let b = seg_end.min(e);
        if a < b {
            wa_e += r.dp_cum * (src.a_pref(b) as i128 - src.a_pref(a) as i128);
        }
        // Tardy side: positions in [max(a, e), seg_end).
        let a2 = a.max(e);
        if a2 < seg_end {
            wb_e += r.dp_cum * (src.b_suff(a2) as i128 - src.b_suff(seg_end) as i128);
        }
        src.tick(8);
    }
    let mut obj = (d - shift) * a_e - wa_e + wb_e + (shift - d) * b_e;
    src.tick(6);

    // Pass 4 (UCDDCP): subtract the compression gains. Outside the move
    // window [q₀, q_m] both the job identities and the running α/β sums are
    // untouched, so the cached gain tables cover everything except an
    // explicit O(window) sweep between the first and last changed position.
    if src.kind() == ProblemKind::Ucddcp {
        let (gain_t, gain_e) = if rows.is_empty() {
            (src.gt_suff(r_pos) as i128, src.ge_pref(r_pos) as i128)
        } else {
            let q0 = rows[0].pos;
            let qm = rows[rows.len() - 1].pos;
            // Tardy-side gains over k ≥ r_pos.
            let mut gt = src.gt_suff(r_pos.max(qm + 1)) as i128;
            if r_pos < q0 {
                gt += src.gt_suff(r_pos) as i128 - src.gt_suff(q0) as i128;
            }
            let start = r_pos.max(q0);
            let mut ri = 0usize;
            while ri < rows.len() && rows[ri].pos < start {
                ri += 1;
            }
            for k in start..=qm {
                while ri < rows.len() && rows[ri].pos < k {
                    ri += 1;
                }
                let j = if ri < rows.len() && rows[ri].pos == k {
                    rows[ri].new_job as usize
                } else {
                    src.seq(k) as usize
                };
                let dbk = if ri < rows.len() { rows[ri].db_tail } else { 0 };
                let x = src.slack(j) as i128;
                let over = src.b_suff(k) as i128 + dbk - src.gamma(j) as i128;
                if x > 0 && over > 0 {
                    gt += x * over;
                }
                src.tick(8);
            }
            // Early-side gains over k < r_pos.
            let mut ge = src.ge_pref(r_pos.min(q0)) as i128;
            if r_pos > qm + 1 {
                ge += src.ge_pref(r_pos) as i128 - src.ge_pref(qm + 1) as i128;
            }
            let end = r_pos.min(qm + 1);
            let mut ri = 0usize;
            let mut dak = 0i128;
            for k in q0..end {
                while ri < rows.len() && rows[ri].pos < k {
                    dak = rows[ri].da_cum;
                    ri += 1;
                }
                let j = if ri < rows.len() && rows[ri].pos == k {
                    rows[ri].new_job as usize
                } else {
                    src.seq(k) as usize
                };
                let x = src.slack(j) as i128;
                let over = src.a_pref(k) as i128 + dak - src.gamma(j) as i128;
                if x > 0 && over > 0 {
                    ge += x * over;
                }
                src.tick(8);
            }
            (gt, ge)
        };
        obj -= gain_t + gain_e;
        src.tick(2);
    }

    obj.clamp(i64::MIN as i128, i64::MAX as i128) as Cost
}

/// Slice-backed [`DeltaSource`] over host arrays — the host half of the
/// shared scoring core.
pub struct SliceDeltaSource<'a> {
    /// Problem kind.
    pub kind: ProblemKind,
    /// Common due date.
    pub d: Time,
    /// Per-job arrays (processing, min processing, rates).
    pub p: &'a [Time],
    /// Minimum processing times (UCDDCP; same as `p` for CDD).
    pub m: &'a [Time],
    /// Earliness rates.
    pub alpha: &'a [Time],
    /// Tardiness rates.
    pub beta: &'a [Time],
    /// Compression rates.
    pub gamma: &'a [Time],
    /// Committed sequence.
    pub seq: &'a [u32],
    /// Cached prefix/suffix state for `seq`.
    pub state: &'a DeltaState,
}

impl DeltaSource for SliceDeltaSource<'_> {
    fn n(&self) -> usize {
        self.p.len()
    }
    fn d(&self) -> Time {
        self.d
    }
    fn kind(&self) -> ProblemKind {
        self.kind
    }
    fn p(&mut self, job: usize) -> Time {
        self.p[job]
    }
    fn alpha(&mut self, job: usize) -> Time {
        self.alpha[job]
    }
    fn beta(&mut self, job: usize) -> Time {
        self.beta[job]
    }
    fn gamma(&mut self, job: usize) -> Time {
        self.gamma[job]
    }
    fn slack(&mut self, job: usize) -> Time {
        self.p[job] - self.m[job]
    }
    fn seq(&mut self, k: usize) -> u32 {
        self.seq[k]
    }
    fn c(&mut self, k: usize) -> Time {
        self.state.c[k]
    }
    fn a_pref(&mut self, k: usize) -> Time {
        self.state.a_pref[k]
    }
    fn b_suff(&mut self, k: usize) -> Time {
        self.state.b_suff[k]
    }
    fn wa_pref(&mut self, k: usize) -> Time {
        self.state.wa_pref[k]
    }
    fn wb_suff(&mut self, k: usize) -> Time {
        self.state.wb_suff[k]
    }
    fn gt_suff(&mut self, k: usize) -> Time {
        self.state.gt_suff[k]
    }
    fn ge_pref(&mut self, k: usize) -> Time {
        self.state.ge_pref[k]
    }
}

/// Host-side incremental evaluator: a committed sequence plus its cached
/// [`DeltaState`], scoring candidate moves without re-walking the sequence.
///
/// `commit` is the O(n) rebuild; scoring is O(m log n) (CDD) /
/// O(window) (UCDDCP). Every `resync_every`-th commit additionally
/// verifies the freshly built cache by re-evaluating the committed
/// sequence through the full optimizer (`debug_assert`), mirroring the
/// GPU pipelines' forced-rebuild generations.
pub struct DeltaEvaluator {
    kind: ProblemKind,
    d: Time,
    p: Vec<Time>,
    m: Vec<Time>,
    alpha: Vec<Time>,
    beta: Vec<Time>,
    gamma: Vec<Time>,
    seq: Vec<u32>,
    state: DeltaState,
    ws: DeltaWorkspace,
    moves: Vec<DeltaMove>,
    resync_every: u64,
    commits: u64,
    resyncs: u64,
}

impl DeltaEvaluator {
    /// Build an evaluator committed to `seq`. `resync_every == 0` disables
    /// the periodic verification.
    pub fn new(inst: &Instance, seq: &[u32], resync_every: u64) -> Self {
        let (p, m, alpha, beta, gamma) = inst.to_arrays();
        let mut ev = DeltaEvaluator {
            kind: inst.kind(),
            d: inst.due_date(),
            p,
            m,
            alpha,
            beta,
            gamma,
            seq: seq.to_vec(),
            state: DeltaState::default(),
            ws: DeltaWorkspace::default(),
            moves: Vec::new(),
            resync_every,
            commits: 0,
            resyncs: 0,
        };
        ev.rebuild();
        ev
    }

    fn rebuild(&mut self) {
        self.state.rebuild(
            self.kind,
            &self.p,
            &self.m,
            &self.alpha,
            &self.beta,
            &self.gamma,
            &self.seq,
        );
    }

    /// The committed sequence.
    #[must_use]
    pub fn committed(&self) -> &[u32] {
        &self.seq
    }

    /// Number of forced re-sync verifications performed so far.
    #[must_use]
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }

    /// Score an explicit (sorted, structurally valid) move list.
    pub fn score_moves(&mut self, moves: &[DeltaMove]) -> Cost {
        let mut src = SliceDeltaSource {
            kind: self.kind,
            d: self.d,
            p: &self.p,
            m: &self.m,
            alpha: &self.alpha,
            beta: &self.beta,
            gamma: &self.gamma,
            seq: &self.seq,
            state: &self.state,
        };
        delta_objective(&mut src, moves, &mut self.ws)
    }

    /// The committed sequence's own objective (empty move list).
    pub fn committed_objective(&mut self) -> Cost {
        self.score_moves(&[])
    }

    /// Score a full candidate sequence by diffing it against the committed
    /// one. The candidate must be a permutation of the same job set.
    pub fn score_sequence(&mut self, candidate: &[u32]) -> Cost {
        assert_eq!(candidate.len(), self.seq.len(), "candidate length mismatch");
        self.moves.clear();
        for (k, (&old, &new)) in self.seq.iter().zip(candidate).enumerate() {
            if old != new {
                self.moves.push(DeltaMove { pos: k as u32, old_job: old, new_job: new });
            }
        }
        let moves = std::mem::take(&mut self.moves);
        let cost = self.score_moves(&moves);
        self.moves = moves;
        cost
    }

    /// Score swapping the jobs at positions `i` and `j` of the committed
    /// sequence.
    pub fn score_swap(&mut self, i: usize, j: usize) -> Cost {
        if i == j {
            return self.committed_objective();
        }
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        let moves = [
            DeltaMove { pos: lo as u32, old_job: self.seq[lo], new_job: self.seq[hi] },
            DeltaMove { pos: hi as u32, old_job: self.seq[hi], new_job: self.seq[lo] },
        ];
        self.score_moves(&moves)
    }

    /// Adopt `candidate` as the new committed sequence (O(n) rebuild).
    /// Every `resync_every`-th commit verifies the cache against the full
    /// optimizer in debug builds.
    pub fn commit(&mut self, candidate: &[u32]) {
        assert_eq!(candidate.len(), self.seq.len(), "candidate length mismatch");
        self.seq.clear();
        self.seq.extend_from_slice(candidate);
        self.rebuild();
        self.commits += 1;
        if self.resync_every > 0 && self.commits.is_multiple_of(self.resync_every) {
            self.resyncs += 1;
            debug_assert_eq!(
                self.committed_objective(),
                match self.kind {
                    ProblemKind::Cdd => crate::cdd_optimal::cdd_objective_raw(
                        &self.p, &self.alpha, &self.beta, self.d, &self.seq,
                    ),
                    ProblemKind::Ucddcp => crate::ucddcp_optimal::ucddcp_objective_raw(
                        &self.p, &self.m, &self.alpha, &self.beta, &self.gamma, self.d, &self.seq,
                    ),
                },
                "delta cache diverged from the full optimizer at a re-sync boundary"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluator_for;
    use crate::Instance;

    #[test]
    fn committed_objective_matches_full_evaluator_on_paper_examples() {
        for inst in [Instance::paper_example_cdd(), Instance::paper_example_ucddcp()] {
            let seq: Vec<u32> = (0..5).collect();
            let mut ev = DeltaEvaluator::new(&inst, &seq, 0);
            let full = evaluator_for(&inst);
            assert_eq!(ev.committed_objective(), full.evaluate(&seq));
        }
    }

    #[test]
    fn paper_cdd_identity_scores_81() {
        let inst = Instance::paper_example_cdd();
        let seq: Vec<u32> = (0..5).collect();
        let mut ev = DeltaEvaluator::new(&inst, &seq, 0);
        assert_eq!(ev.committed_objective(), 81);
    }

    #[test]
    fn all_swaps_match_full_evaluation_on_paper_examples() {
        for inst in [Instance::paper_example_cdd(), Instance::paper_example_ucddcp()] {
            let seq: Vec<u32> = (0..5).collect();
            let mut ev = DeltaEvaluator::new(&inst, &seq, 0);
            let full = evaluator_for(&inst);
            for i in 0..5 {
                for j in 0..5 {
                    let mut cand = seq.clone();
                    cand.swap(i, j);
                    assert_eq!(
                        ev.score_swap(i, j),
                        full.evaluate(&cand),
                        "swap ({i},{j}) on {:?}",
                        inst.kind()
                    );
                }
            }
        }
    }

    #[test]
    fn commit_then_score_tracks_the_new_sequence() {
        let inst = Instance::paper_example_ucddcp();
        let seq: Vec<u32> = (0..5).collect();
        let mut ev = DeltaEvaluator::new(&inst, &seq, 2);
        let full = evaluator_for(&inst);
        let cand = vec![3u32, 1, 4, 0, 2];
        assert_eq!(ev.score_sequence(&cand), full.evaluate(&cand));
        ev.commit(&cand);
        assert_eq!(ev.committed_objective(), full.evaluate(&cand));
        ev.commit(&seq); // second commit crosses the resync boundary
        assert_eq!(ev.resyncs(), 1);
        assert_eq!(ev.committed_objective(), full.evaluate(&seq));
    }

    #[test]
    fn structural_validation_rejects_malformed_move_lists() {
        // Out-of-range position.
        assert!(!moves_structurally_valid(
            5,
            &[DeltaMove { pos: 5, old_job: 0, new_job: 1 }]
        ));
        // Not a change.
        assert!(!moves_structurally_valid(
            5,
            &[DeltaMove { pos: 0, old_job: 2, new_job: 2 }]
        ));
        // Unsorted.
        assert!(!moves_structurally_valid(
            5,
            &[
                DeltaMove { pos: 3, old_job: 0, new_job: 1 },
                DeltaMove { pos: 1, old_job: 1, new_job: 0 },
            ]
        ));
        // Not a multiset permutation (job 4 appears from nowhere).
        assert!(!moves_structurally_valid(
            5,
            &[
                DeltaMove { pos: 0, old_job: 0, new_job: 4 },
                DeltaMove { pos: 1, old_job: 1, new_job: 0 },
            ]
        ));
        // A genuine 3-cycle is fine.
        assert!(moves_structurally_valid(
            5,
            &[
                DeltaMove { pos: 0, old_job: 0, new_job: 1 },
                DeltaMove { pos: 1, old_job: 1, new_job: 2 },
                DeltaMove { pos: 2, old_job: 2, new_job: 0 },
            ]
        ));
    }
}
