//! The O(n) fixed-sequence optimizer for the **UCDDCP** problem
//! (Awasthi, Lässig, Kramer 2015 — reference [8] of the paper).
//!
//! Two structural properties (proved in [8]) reduce the fixed-sequence
//! UCDDCP to the fixed-sequence CDD plus an independent per-job compression
//! decision:
//!
//! * **Property 1** — the due-date position of the optimal *uncompressed*
//!   (CDD) schedule is unchanged by optimal compression.
//! * **Property 2** — if compressing a job improves the objective at all,
//!   compressing it *fully* (to `Mᵢ`) is optimal.
//!
//! With the due-date position `r` fixed (position `r` completes exactly at
//! `d`; positions after it are tardy, positions before it early), the effect
//! of fully compressing one job is exactly linear and independent of all
//! other compression decisions:
//!
//! * a **tardy** job at position `k > r`: compressing it by `X` pulls every
//!   job from `k` to `n` earlier by `X` (none can cross `d`, since they all
//!   start at or after `d`), gaining `X · (Σ_{i=k..n} βᵢ − γ)`;
//! * an **early/on-time** job at position `k ≤ r`: the chain from `k` to `r`
//!   is pinned by `C_r = d`, so compression moves the *predecessors*
//!   `1..k-1` later by `X` (they cannot cross `d` either), gaining
//!   `X · (Σ_{i<k} αᵢ − γ)`.
//!
//! A job is therefore compressed iff its bracketed rate sum strictly exceeds
//! its compression penalty. Both passes are O(n).

use crate::cdd_optimal::{cdd_objective_with_shift, cdd_optimal_shift_raw};
use crate::{Cost, Instance, JobSequence, ProblemKind, Time};

/// Result of optimizing one job sequence for the UCDDCP problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UcddcpSequenceSolution {
    /// Minimal total penalty `Σ (αᵢEᵢ + βᵢTᵢ + γᵢXᵢ)`.
    pub objective: Cost,
    /// Objective of the optimal *uncompressed* (pure CDD) schedule of the
    /// same sequence; `objective ≤ cdd_objective`.
    pub cdd_objective: Cost,
    /// Start time of the first job in the optimal **compressed** schedule.
    ///
    /// Compressing an early-side job keeps the due-date position pinned
    /// (`C_r = d`) and moves the job's *predecessors* later, so the first
    /// start grows by the total early-side compression relative to the
    /// uncompressed optimum.
    pub shift: Time,
    /// Due-date position `r` (see
    /// [`crate::CddSequenceSolution::due_position`]); unchanged by
    /// compression (Property 1).
    pub due_position: usize,
    /// Compression amount `Xᵢ` per **job id** (not per position). Each entry
    /// is either `0` or the job's full `Pᵢ − Mᵢ` (Property 2).
    pub compressions: Vec<Time>,
}

/// Optimal UCDDCP objective for one sequence, on raw arrays — the GPU/CPU
/// fitness function. O(n), zero allocation.
///
/// `p`, `m`, `alpha`, `beta`, `gamma` are indexed by job id; `seq[k]` is the
/// job at position `k` and must be a **permutation** of `0..seq.len()`
/// (job ids are validated, uniqueness is the caller's contract — it is what
/// makes the specialized rate sums below exact). Requires an unrestricted
/// due date (`d ≥ Σ Pᵢ`), checked only by `debug_assert`.
pub fn ucddcp_objective_raw(
    p: &[Time],
    m: &[Time],
    alpha: &[Time],
    beta: &[Time],
    gamma: &[Time],
    d: Time,
    seq: &[u32],
) -> Cost {
    let n = seq.len();
    // One vectorizable pass validates every job id against the shortest
    // array; afterwards each gather below is in bounds by construction, so
    // the per-access bounds checks (and their branches) drop out of the
    // O(n) hot loops.
    let limit = p.len().min(m.len()).min(alpha.len()).min(beta.len()).min(gamma.len());
    assert!(
        n <= limit && seq.iter().all(|&j| (j as usize) < n),
        "ucddcp_objective_raw: sequence contains a job id outside the instance"
    );

    // With `d ≥ Σ Pᵢ`, the packed schedule completes every position at or
    // before `d`: pass 1 of `cdd_optimal_shift_raw` is fully determined —
    // `τ = n`, `c_τ = Σ Pᵢ`, `pe = Σ αᵢ`, `pl = 0` — and both sums are
    // order-independent (a permutation visits each of the first `n` job
    // ids exactly once), so they come from direct gather-free slice sums.
    let sum_p: Time = p[..n].iter().sum();
    debug_assert!(sum_p <= d, "ucddcp_objective_raw requires an unrestricted due date");
    let pe0: Time = alpha[..n].iter().sum();

    let (shift, r, pl) = if n == 0 || pe0 == 0 {
        // All-tardy is impossible here; pl (= 0) ≥ pe means packed is optimal.
        (0, n, 0)
    } else {
        // Align position τ with the due date, then keep shifting while making
        // position τ tardy still pays off (Theorem 1, Case 2(ii)).
        let mut shift = d - sum_p;
        let mut tau = n;
        let mut pe = pe0;
        let mut pl: Time = 0;
        while tau >= 1 {
            // SAFETY: `tau - 1 < n = seq.len()` and every id in `seq` was
            // validated above against the shortest array.
            let j = unsafe { *seq.get_unchecked(tau - 1) } as usize;
            let pe_next = pe - unsafe { *alpha.get_unchecked(j) };
            let pl_next = pl + unsafe { *beta.get_unchecked(j) };
            if pl_next < pe_next {
                shift += unsafe { *p.get_unchecked(j) };
                pe = pe_next;
                pl = pl_next;
                tau -= 1;
            } else {
                break;
            }
        }
        (shift, tau, pl)
    };

    // Single fused pass: CDD penalty plus both compression rules. Positions
    // before `r` complete at or before `d` (earliness side, prefix-α rule);
    // positions from `r` on complete at or after `d` (tardiness side,
    // suffix-β rule). `pl` is exactly the β-sum over the tardy positions,
    // so the backward suffix accumulation of the two-pass form becomes a
    // forward decrement — same value at every position, identical integer
    // results.
    let mut c = shift;
    let mut obj: Cost = 0;
    let mut prefix_alpha: Time = 0;
    let mut suffix_beta = pl;
    for (k, &job) in seq.iter().enumerate() {
        let j = job as usize;
        // SAFETY: every id in `seq` was validated above against the
        // shortest of the five arrays.
        unsafe {
            let pj = *p.get_unchecked(j);
            let x = pj - *m.get_unchecked(j);
            let gj = *gamma.get_unchecked(j);
            c += pj;
            if k < r {
                let aj = *alpha.get_unchecked(j);
                obj += aj * (d - c);
                if x > 0 && prefix_alpha > gj {
                    obj -= x * (prefix_alpha - gj);
                }
                prefix_alpha += aj;
            } else {
                let bj = *beta.get_unchecked(j);
                obj += bj * (c - d);
                if x > 0 && suffix_beta > gj {
                    obj -= x * (suffix_beta - gj);
                }
                suffix_beta -= bj;
            }
        }
    }
    obj
}

/// Optimize one job sequence of a UCDDCP instance, returning the full
/// solution (objective, shift, due-date position and per-job compressions).
///
/// # Panics
/// Panics if `seq.len() != inst.n()` or if the instance is not a UCDDCP
/// instance (use [`crate::optimize_cdd_sequence`] for plain CDD).
pub fn optimize_ucddcp_sequence(inst: &Instance, seq: &JobSequence) -> UcddcpSequenceSolution {
    assert_eq!(
        inst.kind(),
        ProblemKind::Ucddcp,
        "optimize_ucddcp_sequence requires a UCDDCP instance"
    );
    assert_eq!(
        seq.len(),
        inst.n(),
        "sequence length {} does not match instance size {}",
        seq.len(),
        inst.n()
    );
    debug_assert!(seq.is_valid_permutation());

    let (p, m, a, b, g) = inst.to_arrays();
    let d = inst.due_date();
    let s = seq.as_slice();
    let (shift, r) = cdd_optimal_shift_raw(&p, &a, &b, d, s);
    let cdd_objective = cdd_objective_with_shift(&p, &a, &b, d, s, shift);

    let mut objective = cdd_objective;
    let mut compressions = vec![0 as Time; inst.n()];

    let mut suffix_beta: Time = 0;
    for k in (r..s.len()).rev() {
        let j = s[k] as usize;
        suffix_beta += b[j];
        let x = p[j] - m[j];
        if x > 0 && suffix_beta > g[j] {
            objective -= x * (suffix_beta - g[j]);
            compressions[j] = x;
        }
    }
    let mut prefix_alpha: Time = 0;
    let mut early_compression: Time = 0;
    for &job in &s[..r] {
        let j = job as usize;
        let x = p[j] - m[j];
        if x > 0 && prefix_alpha > g[j] {
            objective -= x * (prefix_alpha - g[j]);
            compressions[j] = x;
            early_compression += x;
        }
        prefix_alpha += a[j];
    }

    // Early-side compression moves predecessors right while C_r stays at d:
    // the first job's start grows by the total early-side compression.
    UcddcpSequenceSolution {
        objective,
        cdd_objective,
        shift: shift + early_compression,
        due_position: r,
        compressions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Instance;

    /// The paper's worked example (Section IV-B): Table I data with d = 22.
    /// The walk-through compresses jobs 5 and 4 (1-based) for a final
    /// objective of 77, starting from the CDD optimum 81.
    #[test]
    fn paper_illustration_reaches_77() {
        let inst = Instance::paper_example_ucddcp();
        let seq = JobSequence::identity(5);
        let sol = optimize_ucddcp_sequence(&inst, &seq);
        assert_eq!(sol.cdd_objective, 81);
        assert_eq!(sol.objective, 77);
        // Due date sits at the completion of job 2 (1-based position 2).
        assert_eq!(sol.due_position, 2);
        // Jobs 4 and 5 (ids 3, 4) are fully compressed by 1 each; all other
        // jobs have zero compression headroom or no incentive.
        assert_eq!(sol.compressions, vec![0, 0, 0, 1, 1]);
    }

    #[test]
    fn raw_objective_matches_full_solution() {
        let inst = Instance::paper_example_ucddcp();
        let (p, m, a, b, g) = inst.to_arrays();
        let seq = JobSequence::identity(5);
        let raw = ucddcp_objective_raw(&p, &m, &a, &b, &g, 22, seq.as_slice());
        assert_eq!(raw, 77);
    }

    #[test]
    fn no_compression_when_gamma_dominates() {
        // γ so large that compression never pays: UCDDCP optimum == CDD one.
        let inst = Instance::ucddcp_from_arrays(
            &[4, 4],
            &[1, 1],
            &[2, 2],
            &[3, 3],
            &[1000, 1000],
            20,
        )
        .unwrap();
        let sol = optimize_ucddcp_sequence(&inst, &JobSequence::identity(2));
        assert_eq!(sol.objective, sol.cdd_objective);
        assert_eq!(sol.compressions, vec![0, 0]);
    }

    #[test]
    fn free_compression_squeezes_tardy_jobs() {
        // γ = 0, all jobs end up placed around d; compressing tardy jobs is
        // free improvement.
        let inst =
            Instance::ucddcp_from_arrays(&[6, 6], &[2, 2], &[5, 5], &[5, 5], &[0, 0], 12).unwrap();
        let sol = optimize_ucddcp_sequence(&inst, &JobSequence::identity(2));
        // CDD optimum: shift so job 2 completes at d (C = {6,12}): cost 0
        // earliness for job 1? E1 = 6 → 5·6 = 30; or job 1 at d (C = {12,18}
        // shift 6): T2 = 6 → 30. Either way CDD = 30.
        assert_eq!(sol.cdd_objective, 30);
        // Due position r = 2 (C = {6,12}, job 2 at d). Compressing job 2
        // (early-side rule) pulls job 1 later by 4 units for free:
        // gain 4 · (α₁ − γ₂) = 4 · 5 = 20 → objective 10.
        assert_eq!(sol.objective, 10);
    }

    #[test]
    fn equality_of_gain_and_gamma_does_not_compress() {
        // suffix β == γ exactly → zero gain → keep X = 0.
        let inst =
            Instance::ucddcp_from_arrays(&[5, 5], &[1, 1], &[9, 9], &[4, 4], &[9, 4], 10).unwrap();
        let sol = optimize_ucddcp_sequence(&inst, &JobSequence::identity(2));
        // CDD: packed C = {5,10}: E1 = 5 → 45; shifting right: crossing job 2
        // ... due position: C2 = 10 = d → r = 2, pe = 18, pl = 0 already
        // aligned (shift 0). Crossing job 2: pe' = 9, pl' = 4 < 9 → shift by
        // P2 = 5: C = {10,15}: T2 = 5·4 = 20 → worse? No: E1 = 0, job1 at d.
        // Objective = 20 vs packed 45. Then crossing job 1: pe'' = 0,
        // pl'' = 8 ≥ 0 → stop. CDD = 20, r = 1.
        assert_eq!(sol.cdd_objective, 20);
        assert_eq!(sol.due_position, 1);
        // Tardy job 2 has suffix β = 4 == γ2 = 4 → no compression.
        assert_eq!(sol.compressions, vec![0, 0]);
        assert_eq!(sol.objective, 20);
    }

    #[test]
    fn early_side_compression_helps_predecessors() {
        // Three jobs; the middle one pinned at d; compressing it pulls the
        // first job's earliness down.
        let inst = Instance::ucddcp_from_arrays(
            &[10, 10, 10],
            &[10, 2, 10],
            &[8, 1, 1],
            &[1, 1, 50],
            &[100, 2, 100],
            40,
        )
        .unwrap();
        let sol = optimize_ucddcp_sequence(&inst, &JobSequence::identity(3));
        // Prefix α before job 2 (id 1) is α₀ = 8 > γ₁ = 2, headroom 8 units.
        assert_eq!(sol.compressions[1], 8);
        assert_eq!(sol.objective, sol.cdd_objective - 8 * (8 - 2));
    }

    /// The fused single-pass form of `ucddcp_objective_raw` must agree with
    /// the two-pass optimizer on arbitrary instances, including the edge
    /// cases its specialization leans on (`pe = 0`, `d = Σ Pᵢ` exactly).
    #[test]
    fn raw_objective_matches_two_pass_optimizer_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xCDD1);
        for case in 0..500 {
            let n = rng.gen_range(1..=24);
            let p: Vec<Time> = (0..n).map(|_| rng.gen_range(1..=30)).collect();
            let m: Vec<Time> = p.iter().map(|&pi| rng.gen_range(1..=pi)).collect();
            let zero_alpha = case % 7 == 0;
            let a: Vec<Time> =
                (0..n).map(|_| if zero_alpha { 0 } else { rng.gen_range(0..=15) }).collect();
            let b: Vec<Time> = (0..n).map(|_| rng.gen_range(0..=15)).collect();
            let g: Vec<Time> = (0..n).map(|_| rng.gen_range(0..=12)).collect();
            let sum_p: Time = p.iter().sum();
            let d = if case % 5 == 0 { sum_p } else { sum_p + rng.gen_range(0..=40 as Time) };
            let inst = Instance::ucddcp_from_arrays(&p, &m, &a, &b, &g, d).unwrap();
            let seq = JobSequence::random(n, &mut rng);
            let sol = optimize_ucddcp_sequence(&inst, &seq);
            let raw = ucddcp_objective_raw(&p, &m, &a, &b, &g, d, seq.as_slice());
            assert_eq!(raw, sol.objective, "case {case}: n={n} d={d} seq={:?}", seq.as_slice());
        }
    }

    #[test]
    #[should_panic(expected = "requires a UCDDCP instance")]
    fn cdd_instance_rejected() {
        let inst = Instance::paper_example_cdd();
        optimize_ucddcp_sequence(&inst, &JobSequence::identity(5));
    }

    #[test]
    fn compression_never_hurts() {
        let inst = Instance::paper_example_ucddcp();
        for perm in [
            vec![0u32, 1, 2, 3, 4],
            vec![4, 3, 2, 1, 0],
            vec![2, 0, 4, 1, 3],
            vec![1, 3, 0, 4, 2],
        ] {
            let seq = JobSequence::from_vec(perm).unwrap();
            let sol = optimize_ucddcp_sequence(&inst, &seq);
            assert!(sol.objective <= sol.cdd_objective);
        }
    }
}
