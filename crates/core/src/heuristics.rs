//! Constructive starting heuristics for the sequence search.
//!
//! Optimal CDD schedules are **V-shaped** around the due date (a classical
//! structural result for earliness/tardiness scheduling): jobs completing
//! before `d` appear in *descending* `Pᵢ/αᵢ` order (cheap-to-hold-early jobs
//! drift leftward), jobs after `d` in *ascending* `Pᵢ/βᵢ` order (weighted
//! shortest processing time). [`v_shaped_sequence`] builds such a sequence
//! greedily and is the initialization used by the metaheuristic ensembles —
//! 1000 window shuffles cannot sort hundreds of jobs from a uniformly random
//! permutation, so every practical solver for these benchmarks (including
//! the CPU predecessors the paper compares against) starts from a
//! constructive order and lets the metaheuristic refine it.

use crate::{Instance, JobSequence};

/// Build a V-shaped starting sequence for `inst`.
///
/// 1. Jobs are ranked by *earliness friendliness* `αᵢ/Pᵢ` (low rate, long
///    job ⇒ cheapest to park before the due date).
/// 2. The early set is filled greedily until its processing time reaches the
///    due date; everything else goes to the tardy set.
/// 3. The early set is ordered by descending `Pᵢ/αᵢ`, the tardy set by
///    ascending `Pᵢ/βᵢ` (WSPT).
pub fn v_shaped_sequence(inst: &Instance) -> JobSequence {
    let n = inst.n();
    let d = inst.due_date();

    // Rank by earliness friendliness.
    let mut by_friendliness: Vec<u32> = (0..n as u32).collect();
    by_friendliness.sort_by(|&x, &y| {
        let jx = inst.job(x as usize);
        let jy = inst.job(y as usize);
        // α/P ascending ⇔ compare α_x·P_y vs α_y·P_x (integer, no NaN).
        (jx.earliness_penalty * jy.processing)
            .cmp(&(jy.earliness_penalty * jx.processing))
            .then(x.cmp(&y))
    });

    // Greedy fill of the early set up to the due date.
    let mut early: Vec<u32> = Vec::new();
    let mut tardy: Vec<u32> = Vec::new();
    let mut used = 0;
    for &j in &by_friendliness {
        let p = inst.job(j as usize).processing;
        if used + p <= d {
            used += p;
            early.push(j);
        } else {
            tardy.push(j);
        }
    }

    // Left arm: descending P/α  ⇔ compare P_x·α_y vs P_y·α_x, descending.
    early.sort_by(|&x, &y| {
        let jx = inst.job(x as usize);
        let jy = inst.job(y as usize);
        (jy.processing * jx.earliness_penalty)
            .cmp(&(jx.processing * jy.earliness_penalty))
            .then(x.cmp(&y))
    });
    // Right arm: ascending P/β (WSPT).
    tardy.sort_by(|&x, &y| {
        let jx = inst.job(x as usize);
        let jy = inst.job(y as usize);
        (jx.processing * jy.tardiness_penalty)
            .cmp(&(jy.processing * jx.tardiness_penalty))
            .then(x.cmp(&y))
    });

    early.extend_from_slice(&tardy);
    JobSequence::from_vec(early).expect("partition of 0..n is a permutation")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{best_sequence_bruteforce, optimal_sequence_objective};
    use crate::Instance;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn heuristic_is_a_permutation() {
        let inst = Instance::paper_example_cdd();
        let seq = v_shaped_sequence(&inst);
        assert!(seq.is_valid_permutation());
        assert_eq!(seq.len(), 5);
    }

    #[test]
    fn heuristic_close_to_optimum_on_small_instances() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut total_gap = 0.0;
        for trial in 0..20 {
            let n = 8;
            let p: Vec<i64> = (0..n).map(|_| rng.gen_range(1..=20)).collect();
            let a: Vec<i64> = (0..n).map(|_| rng.gen_range(1..=10)).collect();
            let b: Vec<i64> = (0..n).map(|_| rng.gen_range(1..=15)).collect();
            let h = [0.2, 0.4, 0.6, 0.8][trial % 4];
            let d = (p.iter().sum::<i64>() as f64 * h) as i64;
            let inst = Instance::cdd_from_arrays(&p, &a, &b, d).unwrap();
            let (_, opt) = best_sequence_bruteforce(&inst);
            let heur = optimal_sequence_objective(&inst, &v_shaped_sequence(&inst));
            assert!(heur >= opt);
            total_gap += (heur - opt) as f64 / opt.max(1) as f64;
        }
        // Threshold is a statistical bound over 20 random instances and so
        // depends on the RNG stream (0.31 with the vendored SplitMix64
        // `StdRng`); 0.35 keeps the "close to optimum" claim while staying
        // robust to stream changes.
        let avg_gap = total_gap / 20.0;
        assert!(avg_gap < 0.35, "average heuristic gap {avg_gap:.2} too large");
    }

    #[test]
    fn heuristic_beats_random_by_a_wide_margin() {
        let mut rng = StdRng::seed_from_u64(5);
        let p: Vec<i64> = (0..100).map(|_| rng.gen_range(1..=20)).collect();
        let a: Vec<i64> = (0..100).map(|_| rng.gen_range(1..=10)).collect();
        let b: Vec<i64> = (0..100).map(|_| rng.gen_range(1..=15)).collect();
        let d = (p.iter().sum::<i64>() as f64 * 0.6) as i64;
        let inst = Instance::cdd_from_arrays(&p, &a, &b, d).unwrap();

        let heur = optimal_sequence_objective(&inst, &v_shaped_sequence(&inst));
        let random_avg: f64 = (0..20)
            .map(|_| {
                optimal_sequence_objective(&inst, &JobSequence::random(100, &mut rng)) as f64
            })
            .sum::<f64>()
            / 20.0;
        assert!(
            (heur as f64) < random_avg * 0.7,
            "heuristic {heur} not clearly better than random avg {random_avg}"
        );
    }

    #[test]
    fn works_for_ucddcp_instances_too() {
        let inst = Instance::paper_example_ucddcp();
        let seq = v_shaped_sequence(&inst);
        assert!(seq.is_valid_permutation());
        let obj = optimal_sequence_objective(&inst, &seq);
        assert!(obj >= 0);
    }

    #[test]
    fn handles_extreme_due_dates() {
        // d = 0: everything tardy, pure WSPT.
        let inst = Instance::cdd_from_arrays(&[5, 1, 3], &[1, 1, 1], &[1, 10, 1], 0).unwrap();
        let seq = v_shaped_sequence(&inst);
        assert!(seq.is_valid_permutation());
        // Job 1 (p=1, β=10) has the smallest P/β — first in WSPT.
        assert_eq!(seq.job_at(0), 1);
    }
}
