//! Explicit schedules: per-position completion times and compressions.
//!
//! The optimizers in [`crate::cdd_optimal`] / [`crate::ucddcp_optimal`]
//! return compact solutions (shift + compressions); [`Schedule`] expands
//! them into explicit completion times for reporting, plotting and
//! independent objective verification.

use crate::{Cost, Instance, JobSequence, Time};

/// An explicit idle-free schedule of a job sequence.
///
/// All vectors are indexed by **sequence position** (`0..n`), not job id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    sequence: JobSequence,
    /// Start time of the first job (the optimizer's right-shift).
    first_start: Time,
    /// Completion time of the job at each position.
    completions: Vec<Time>,
    /// Compression `X` applied to the job at each position.
    compressions: Vec<Time>,
}

impl Schedule {
    /// Build the idle-free schedule of `seq` whose first job starts at
    /// `shift`, with optional per-**job-id** compressions (`None` ⇒ no
    /// compression).
    pub fn build(
        inst: &Instance,
        seq: &JobSequence,
        shift: Time,
        compressions_by_job: Option<&[Time]>,
    ) -> Self {
        assert_eq!(seq.len(), inst.n(), "sequence/instance size mismatch");
        let n = inst.n();
        let mut completions = Vec::with_capacity(n);
        let mut compressions = Vec::with_capacity(n);
        let mut t = shift;
        for k in 0..n {
            let j = seq.job_at(k) as usize;
            let x = compressions_by_job.map_or(0, |c| c[j]);
            t += inst.job(j).processing - x;
            completions.push(t);
            compressions.push(x);
        }
        Schedule { sequence: seq.clone(), first_start: shift, completions, compressions }
    }

    /// The job order this schedule realizes.
    pub fn sequence(&self) -> &JobSequence {
        &self.sequence
    }

    /// Completion time of the job at position `k`.
    pub fn completion_at(&self, k: usize) -> Time {
        self.completions[k]
    }

    /// Completion times by position.
    pub fn completions(&self) -> &[Time] {
        &self.completions
    }

    /// Compression amounts by position.
    pub fn compressions(&self) -> &[Time] {
        &self.compressions
    }

    /// Start time of the job at position `k` (idle-free: equals the
    /// predecessor's completion, or the schedule's shift for `k = 0`).
    pub fn start_at(&self, k: usize) -> Time {
        if k == 0 {
            self.first_start
        } else {
            self.completions[k - 1]
        }
    }

    /// Start times by position.
    pub fn starts(&self) -> Vec<Time> {
        (0..self.completions.len()).map(|k| self.start_at(k)).collect()
    }

    /// Total objective `Σ (αE + βT + γX)` of this schedule — an independent
    /// re-evaluation used to cross-check optimizer outputs.
    pub fn objective(&self, inst: &Instance) -> Cost {
        let d = inst.due_date();
        let mut obj = 0;
        for k in 0..self.completions.len() {
            let j = self.sequence.job_at(k) as usize;
            let job = inst.job(j);
            let c = self.completions[k];
            obj += if c < d {
                job.earliness_penalty * (d - c)
            } else {
                job.tardiness_penalty * (c - d)
            };
            obj += job.compression_penalty * self.compressions[k];
        }
        obj
    }

    /// Validate feasibility against the instance: idle-free contiguity,
    /// non-negative start, compression bounds. Returns a human-readable
    /// violation description, or `Ok(())`.
    pub fn validate(&self, inst: &Instance) -> Result<(), String> {
        let n = inst.n();
        if self.completions.len() != n {
            return Err(format!(
                "schedule has {} positions, instance has {n}",
                self.completions.len()
            ));
        }
        if self.first_start < 0 {
            return Err(format!("first job starts at {} < 0", self.first_start));
        }
        for k in 0..n {
            let j = self.sequence.job_at(k) as usize;
            let job = inst.job(j);
            let x = self.compressions[k];
            if x < 0 || x > job.max_compression() {
                return Err(format!(
                    "position {k} (job {j}): compression {x} outside 0..={}",
                    job.max_compression()
                ));
            }
            let duration = self.completions[k] - self.start_at(k);
            if duration != job.processing - x {
                return Err(format!(
                    "idle/overlap at position {k}: occupies {duration} time units \
                     but effective processing time is {}",
                    job.processing - x
                ));
            }
        }
        Ok(())
    }

    /// Render a compact Gantt-style text diagram (as in the paper's Figs
    /// 1–6), marking the due date with `|`.
    pub fn to_gantt(&self, inst: &Instance) -> String {
        use std::fmt::Write;
        let d = inst.due_date();
        let starts = self.starts();
        let mut out = String::new();
        for (k, &c) in self.completions.iter().enumerate() {
            let j = self.sequence.job_at(k);
            let marker = if c == d { "  <- completes at due date" } else { "" };
            writeln!(
                out,
                "pos {:>3}  job {:>3}  [{:>5}, {:>5})  X={}{}",
                k + 1,
                j + 1,
                starts[k],
                c,
                self.compressions[k],
                marker
            )
            .expect("writing to String cannot fail");
        }
        writeln!(out, "due date d = {d}").expect("writing to String cannot fail");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{optimize_cdd_sequence, optimize_ucddcp_sequence, Instance};

    #[test]
    fn schedule_reproduces_cdd_optimum() {
        let inst = Instance::paper_example_cdd();
        let seq = JobSequence::identity(5);
        let sol = optimize_cdd_sequence(&inst, &seq);
        let sched = Schedule::build(&inst, &seq, sol.shift, None);
        assert_eq!(sched.objective(&inst), sol.objective);
        sched.validate(&inst).unwrap();
        // Final completion times from the paper: {11, 16, 18, 22, 26}.
        assert_eq!(sched.completions(), &[11, 16, 18, 22, 26]);
    }

    #[test]
    fn schedule_reproduces_ucddcp_optimum() {
        let inst = Instance::paper_example_ucddcp();
        let seq = JobSequence::identity(5);
        let sol = optimize_ucddcp_sequence(&inst, &seq);
        let sched = Schedule::build(&inst, &seq, sol.shift, Some(&sol.compressions));
        assert_eq!(sched.objective(&inst), sol.objective);
        sched.validate(&inst).unwrap();
    }

    #[test]
    fn starts_are_contiguous() {
        let inst = Instance::paper_example_cdd();
        let seq = JobSequence::from_vec(vec![2, 0, 3, 1, 4]).unwrap();
        let sched = Schedule::build(&inst, &seq, 4, None);
        let starts = sched.starts();
        assert_eq!(starts[0], 4);
        for (k, &start) in starts.iter().enumerate().skip(1) {
            assert_eq!(start, sched.completion_at(k - 1));
        }
    }

    #[test]
    fn validate_rejects_out_of_bound_compression() {
        let inst = Instance::paper_example_ucddcp();
        let seq = JobSequence::identity(5);
        // Job 0 has max compression 1; force 3.
        let bad = vec![3, 0, 0, 0, 0];
        let sched = Schedule::build(&inst, &seq, 0, Some(&bad));
        assert!(sched.validate(&inst).unwrap_err().contains("compression"));
    }

    #[test]
    fn gantt_marks_due_date() {
        let inst = Instance::paper_example_cdd();
        let seq = JobSequence::identity(5);
        let sol = optimize_cdd_sequence(&inst, &seq);
        let sched = Schedule::build(&inst, &seq, sol.shift, None);
        let g = sched.to_gantt(&inst);
        assert!(g.contains("completes at due date"));
        assert!(g.contains("due date d = 16"));
    }
}
