//! Typed solve requests and responses — the wire types of the solver
//! service (`cdd-service`).
//!
//! A [`SolveRequest`] bundles everything that determines a metaheuristic
//! solve: the problem instance, the algorithm, its generation budget and the
//! master seed. The content of a request — not its arrival time, queue
//! position or the device it lands on — fully determines the returned
//! fitness, which is what makes responses cacheable by content hash (see
//! [`SolveRequest::content_key`]) and lets a service replay a workload
//! deterministically.
//!
//! These types live in `cdd-core` (rather than the service crate) so the
//! GPU pipelines, the bench harness and the service all speak the same
//! vocabulary without depending on each other.

use crate::{Cost, Instance, JobSequence};
use std::fmt;
use std::str::FromStr;

/// Which metaheuristic a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Asynchronous parallel Simulated Annealing (paper Section VI).
    Sa,
    /// Discrete Particle Swarm Optimization (paper Section VII).
    Dpso,
}

impl Algorithm {
    /// Lower-case wire label (`sa` / `dpso`), as used in workload files.
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::Sa => "sa",
            Algorithm::Dpso => "dpso",
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for Algorithm {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "sa" => Ok(Algorithm::Sa),
            "dpso" => Ok(Algorithm::Dpso),
            other => Err(format!("unknown algorithm {other:?} (expected `sa` or `dpso`)")),
        }
    }
}

/// Service priority class of a request. Priority shapes *scheduling and
/// admission* — a higher class is dispatched first and keeps its queue
/// headroom under load — but never the computed answer: it is deliberately
/// excluded from [`SolveRequest::content_key`], so identical work submitted
/// at different priorities still deduplicates through the solution cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Best-effort bulk work: first to be shed under queue pressure.
    Batch,
    /// The default class.
    #[default]
    Normal,
    /// Latency-sensitive traffic: dispatched ahead of both other classes.
    Interactive,
}

impl Priority {
    /// Lower-case wire label, as used in workload files and frames.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Batch => "batch",
            Priority::Normal => "normal",
            Priority::Interactive => "interactive",
        }
    }

    /// Stable wire encoding (`0/1/2` in ascending urgency).
    pub fn as_u8(self) -> u8 {
        match self {
            Priority::Batch => 0,
            Priority::Normal => 1,
            Priority::Interactive => 2,
        }
    }

    /// Inverse of [`Self::as_u8`] — unknown bytes are a protocol error, not
    /// a panic.
    pub fn from_u8(v: u8) -> Result<Self, String> {
        match v {
            0 => Ok(Priority::Batch),
            1 => Ok(Priority::Normal),
            2 => Ok(Priority::Interactive),
            other => Err(format!("unknown priority byte {other}")),
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for Priority {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "batch" => Ok(Priority::Batch),
            "normal" => Ok(Priority::Normal),
            "interactive" => Ok(Priority::Interactive),
            other => Err(format!(
                "unknown priority {other:?} (expected `batch`, `normal` or `interactive`)"
            )),
        }
    }
}

/// Distributed-tracing context carried alongside a request as it crosses
/// process boundaries (client → router → node → service), in the spirit of
/// Dapper-style context propagation.
///
/// Like [`SolveRequest::tenant`] and priority, the trace context describes
/// *who is watching*, never *what is asked*: it is excluded from
/// [`SolveRequest::content_key`], so traced and untraced submissions of the
/// same work still deduplicate through the solution cache, and an untraced
/// run is byte-identical to a pre-tracing one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// Fleet-unique id of the end-to-end request flight.
    pub trace_id: u64,
    /// Span id of the hop that forwarded the request (0 at the origin).
    pub parent_span_id: u64,
    /// Whether hops along the path should record spans for this request.
    pub sampled: bool,
}

impl TraceContext {
    /// A sampled root context with no parent hop.
    pub fn root(trace_id: u64) -> Self {
        TraceContext { trace_id, parent_span_id: 0, sampled: true }
    }

    /// The context a hop forwards downstream: same trace, this hop's span
    /// as the parent.
    pub fn child(self, span_id: u64) -> Self {
        TraceContext { parent_span_id: span_id, ..self }
    }
}

/// One solve request: instance + algorithm + budget + seed, plus an
/// optional service-level deadline.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveRequest {
    /// The problem instance (CDD or UCDDCP).
    pub instance: Instance,
    /// Which metaheuristic to run.
    pub algorithm: Algorithm,
    /// Generation budget (1000 or 5000 in the paper's configurations).
    pub iterations: u64,
    /// Master seed of the solve (drives the ensemble, the RNG streams and —
    /// via reseeding — any fault plan a device applies to this request).
    pub seed: u64,
    /// Milliseconds the request may wait *before dispatch*; `None` waits
    /// forever. An expired request is answered with
    /// [`crate::SuiteError::DeadlineExceeded`] without consuming device time.
    pub deadline_ms: Option<u64>,
    /// Owning tenant (rate-limit and accounting identity). Like the
    /// deadline, the tenant describes *who* asked, not *what* was asked —
    /// it is excluded from [`Self::content_key`], so two tenants submitting
    /// identical work share one cached answer.
    pub tenant: String,
    /// Service priority class (scheduling/admission only — see
    /// [`Priority`]).
    pub priority: Priority,
    /// Optional distributed-tracing context. Observability only: excluded
    /// from [`Self::content_key`] and never consulted by scheduling, so a
    /// traced request computes and caches exactly like an untraced one.
    pub trace: Option<TraceContext>,
}

impl SolveRequest {
    /// A request with no deadline, the `"default"` tenant and
    /// [`Priority::Normal`].
    pub fn new(instance: Instance, algorithm: Algorithm, iterations: u64, seed: u64) -> Self {
        SolveRequest {
            instance,
            algorithm,
            iterations,
            seed,
            deadline_ms: None,
            tenant: "default".to_string(),
            priority: Priority::Normal,
            trace: None,
        }
    }

    /// Content hash of the request: a pure function of the instance data,
    /// the algorithm, the budget and the seed. Two requests with equal keys
    /// ask for *exactly* the same computation, so a solution cache may serve
    /// one from the other's result bit-identically.
    pub fn content_key(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_u64(self.instance.content_hash());
        h.write_u64(match self.algorithm {
            Algorithm::Sa => 1,
            Algorithm::Dpso => 2,
        });
        h.write_u64(self.iterations);
        h.write_u64(self.seed);
        h.finish()
    }
}

/// The result of one completed solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveOutcome {
    /// Best sequence found (oracle-verified by the pipelines).
    pub sequence: JobSequence,
    /// Its objective value.
    pub objective: Cost,
    /// Modeled device seconds the solve cost (0 for CPU-fallback or cached
    /// responses).
    pub modeled_seconds: f64,
    /// Fitness evaluations performed across the ensemble.
    pub evaluations: u64,
    /// Whether this response was served from the solution cache (including
    /// joining an identical in-flight request) instead of a fresh dispatch.
    pub cache_hit: bool,
    /// Pool device that computed the result (`None` for cached responses).
    pub device: Option<usize>,
    /// Whether the resilience layer degraded the solve to the CPU ensemble.
    pub cpu_fallback: bool,
    /// Whether the *service* answered from the cheap CPU oracle instead of
    /// running the requested metaheuristic at all (retry budget exhausted
    /// under worker crashes, every breaker open, or queue brownout — see
    /// [`degraded_outcome`]). A degraded answer is a valid schedule with an
    /// exactly-evaluated objective, but not the metaheuristic's answer; it
    /// is never cached.
    pub degraded: bool,
}

/// The graceful-degradation answer for one instance: the V-shaped
/// constructive heuristic (the paper's CPU baseline) evaluated by the exact
/// polynomial evaluator. Pure in the instance — no seed, no iterations — so
/// a degraded answer is byte-identical no matter when or why the service
/// degraded, which is what keeps the chaos determinism contract closed.
pub fn degraded_outcome(inst: &Instance) -> SolveOutcome {
    let sequence = crate::heuristics::v_shaped_sequence(inst);
    let objective = crate::eval::evaluator_for(inst).evaluate(sequence.as_slice());
    SolveOutcome {
        sequence,
        objective,
        modeled_seconds: 0.0,
        evaluations: 1,
        cache_hit: false,
        device: None,
        cpu_fallback: false,
        degraded: true,
    }
}

/// FNV-1a, 64-bit — tiny, dependency-free and stable across platforms
/// (guaranteeing cache keys mean the same thing everywhere).
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }

    pub(crate) fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    pub(crate) fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_round_trips_through_labels() {
        for algo in [Algorithm::Sa, Algorithm::Dpso] {
            assert_eq!(algo.label().parse::<Algorithm>().unwrap(), algo);
        }
        assert_eq!("DPSO".parse::<Algorithm>().unwrap(), Algorithm::Dpso);
        assert!("tabu".parse::<Algorithm>().is_err());
    }

    #[test]
    fn content_key_is_stable_and_content_sensitive() {
        let req = SolveRequest::new(Instance::paper_example_cdd(), Algorithm::Sa, 1000, 42);
        let same = SolveRequest::new(Instance::paper_example_cdd(), Algorithm::Sa, 1000, 42);
        assert_eq!(req.content_key(), same.content_key());

        let other_algo = SolveRequest { algorithm: Algorithm::Dpso, ..req.clone() };
        let other_seed = SolveRequest { seed: 43, ..req.clone() };
        let other_budget = SolveRequest { iterations: 5000, ..req.clone() };
        let other_inst = SolveRequest {
            instance: Instance::paper_example_ucddcp(),
            ..req.clone()
        };
        for different in [other_algo, other_seed, other_budget, other_inst] {
            assert_ne!(req.content_key(), different.content_key());
        }
    }

    #[test]
    fn degraded_outcome_is_the_oracle_answer_and_flagged() {
        let inst = Instance::paper_example_cdd();
        let a = degraded_outcome(&inst);
        let b = degraded_outcome(&inst);
        assert_eq!(a, b, "degraded answers are pure in the instance");
        assert!(a.degraded);
        assert!(!a.cache_hit);
        assert!(a.device.is_none());
        let oracle = crate::eval::evaluator_for(&inst).evaluate(a.sequence.as_slice());
        assert_eq!(a.objective, oracle, "objective is exactly evaluated");
    }

    #[test]
    fn deadline_is_not_part_of_the_content() {
        let req = SolveRequest::new(Instance::paper_example_cdd(), Algorithm::Sa, 100, 7);
        let hurried = SolveRequest { deadline_ms: Some(5), ..req.clone() };
        assert_eq!(req.content_key(), hurried.content_key(), "deadline changes urgency, not work");
    }

    #[test]
    fn tenant_and_priority_are_not_part_of_the_content() {
        // Cross-tenant cache sharding hangs on this: identical work from
        // different tenants (or at different priorities) must collide on
        // one content key so a router shards them to the same node and the
        // node's cache deduplicates them.
        let req = SolveRequest::new(Instance::paper_example_cdd(), Algorithm::Sa, 100, 7);
        let other_tenant = SolveRequest { tenant: "acme".into(), ..req.clone() };
        let urgent = SolveRequest { priority: Priority::Interactive, ..req.clone() };
        assert_eq!(req.content_key(), other_tenant.content_key());
        assert_eq!(req.content_key(), urgent.content_key());
    }

    #[test]
    fn trace_context_is_not_part_of_the_content() {
        // Observability must never perturb the computation: a traced request
        // shares its cache slot with the untraced identical request.
        let req = SolveRequest::new(Instance::paper_example_cdd(), Algorithm::Sa, 100, 7);
        let traced = SolveRequest { trace: Some(TraceContext::root(0xDEAD)), ..req.clone() };
        assert_eq!(req.content_key(), traced.content_key());
        let ctx = TraceContext::root(9);
        let child = ctx.child(42);
        assert_eq!(child.trace_id, 9);
        assert_eq!(child.parent_span_id, 42);
        assert!(child.sampled);
    }

    #[test]
    fn priority_round_trips_and_orders_by_urgency() {
        for p in [Priority::Batch, Priority::Normal, Priority::Interactive] {
            assert_eq!(p.label().parse::<Priority>().unwrap(), p);
            assert_eq!(Priority::from_u8(p.as_u8()).unwrap(), p);
        }
        assert!(Priority::Interactive > Priority::Normal);
        assert!(Priority::Normal > Priority::Batch);
        assert_eq!(Priority::default(), Priority::Normal);
        assert!("urgent".parse::<Priority>().is_err());
        assert!(Priority::from_u8(9).is_err(), "unknown bytes are errors, not panics");
    }
}
