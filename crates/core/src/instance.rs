//! Problem instances: a set of jobs plus a common due date.

use crate::{CoreError, Job, Time};

/// Per-job data as parallel arrays `(P, M, α, β, γ)` — the layout GPU
/// kernels upload (see [`Instance::to_arrays`]).
pub type JobArrays = (Vec<Time>, Vec<Time>, Vec<Time>, Vec<Time>, Vec<Time>);

/// Which of the two problems an [`Instance`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProblemKind {
    /// Common Due-Date problem (no compression). The due date may be
    /// *restrictive* (`d < Σ Pᵢ`) — the OR-library benchmarks use
    /// `d = ⌊h · Σ Pᵢ⌋` with `h ∈ {0.2, 0.4, 0.6, 0.8}`.
    Cdd,
    /// Unrestricted CDD with Controllable Processing Times. Requires
    /// `d ≥ Σ Pᵢ`.
    Ucddcp,
}

/// An immutable, validated problem instance.
///
/// Job indices are `0 ..= n-1`; a [`crate::JobSequence`] is a permutation of
/// these indices. All data is integral (see [`crate::Time`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    jobs: Vec<Job>,
    due_date: Time,
    kind: ProblemKind,
    total_processing: Time,
}

impl Instance {
    /// Build a validated CDD instance.
    pub fn cdd(jobs: Vec<Job>, due_date: Time) -> Result<Self, CoreError> {
        Self::new(jobs, due_date, ProblemKind::Cdd)
    }

    /// Build a validated UCDDCP instance (checks `d ≥ Σ Pᵢ`).
    pub fn ucddcp(jobs: Vec<Job>, due_date: Time) -> Result<Self, CoreError> {
        Self::new(jobs, due_date, ProblemKind::Ucddcp)
    }

    fn new(jobs: Vec<Job>, due_date: Time, kind: ProblemKind) -> Result<Self, CoreError> {
        if jobs.is_empty() {
            return Err(CoreError::EmptyInstance);
        }
        if due_date < 0 {
            return Err(CoreError::NegativeDueDate { due_date });
        }
        for (i, job) in jobs.iter().enumerate() {
            job.validate(i)?;
        }
        let total_processing: Time = jobs.iter().map(|j| j.processing).sum();
        if kind == ProblemKind::Ucddcp && due_date < total_processing {
            return Err(CoreError::RestrictedUcddcp { due_date, total_processing });
        }
        Ok(Instance { jobs, due_date, kind, total_processing })
    }

    /// Convenience constructor for CDD instances from parallel arrays
    /// (`Pᵢ`, `αᵢ`, `βᵢ`).
    pub fn cdd_from_arrays(
        processing: &[Time],
        earliness: &[Time],
        tardiness: &[Time],
        due_date: Time,
    ) -> Result<Self, CoreError> {
        let n = processing.len();
        for (name, len) in [("earliness", earliness.len()), ("tardiness", tardiness.len())] {
            if len != n {
                return Err(CoreError::ArrayLengthMismatch { name, expected: n, found: len });
            }
        }
        let jobs = (0..n)
            .map(|i| Job::cdd(processing[i], earliness[i], tardiness[i]))
            .collect();
        Self::cdd(jobs, due_date)
    }

    /// Convenience constructor for UCDDCP instances from parallel arrays
    /// (`Pᵢ`, `Mᵢ`, `αᵢ`, `βᵢ`, `γᵢ`).
    pub fn ucddcp_from_arrays(
        processing: &[Time],
        min_processing: &[Time],
        earliness: &[Time],
        tardiness: &[Time],
        compression: &[Time],
        due_date: Time,
    ) -> Result<Self, CoreError> {
        let n = processing.len();
        for (name, len) in [
            ("min_processing", min_processing.len()),
            ("earliness", earliness.len()),
            ("tardiness", tardiness.len()),
            ("compression", compression.len()),
        ] {
            if len != n {
                return Err(CoreError::ArrayLengthMismatch { name, expected: n, found: len });
            }
        }
        let jobs = (0..n)
            .map(|i| {
                Job::ucddcp(
                    processing[i],
                    min_processing[i],
                    earliness[i],
                    tardiness[i],
                    compression[i],
                )
            })
            .collect();
        Self::ucddcp(jobs, due_date)
    }

    /// The paper's 5-job illustrative example (Table I) as a CDD instance
    /// with `d = 16`. Its optimum for the identity sequence is 81.
    pub fn paper_example_cdd() -> Self {
        Self::cdd_from_arrays(&[6, 5, 2, 4, 4], &[7, 9, 6, 9, 3], &[9, 5, 4, 3, 2], 16)
            .expect("paper example data is valid")
    }

    /// The paper's 5-job illustrative example (Table I) as a UCDDCP instance
    /// with `d = 22 ≥ Σ Pᵢ = 21`. Its optimum for the identity sequence is 77.
    pub fn paper_example_ucddcp() -> Self {
        Self::ucddcp_from_arrays(
            &[6, 5, 2, 4, 4],
            &[5, 5, 2, 3, 3],
            &[7, 9, 6, 9, 3],
            &[9, 5, 4, 3, 2],
            &[5, 4, 3, 2, 1],
            22,
        )
        .expect("paper example data is valid")
    }

    /// Number of jobs `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.jobs.len()
    }

    /// The jobs, indexed `0 ..= n-1`.
    #[inline]
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Job `i` (panics if out of range, like slice indexing).
    #[inline]
    pub fn job(&self, i: usize) -> &Job {
        &self.jobs[i]
    }

    /// The common due date `d`.
    #[inline]
    pub fn due_date(&self) -> Time {
        self.due_date
    }

    /// Which problem this instance describes.
    #[inline]
    pub fn kind(&self) -> ProblemKind {
        self.kind
    }

    /// `Σ Pᵢ`, the makespan of any idle-free schedule without compression.
    #[inline]
    pub fn total_processing(&self) -> Time {
        self.total_processing
    }

    /// Whether the due date is unrestricted (`d ≥ Σ Pᵢ`). Always true for
    /// UCDDCP instances.
    #[inline]
    pub fn is_unrestricted(&self) -> bool {
        self.due_date >= self.total_processing
    }

    /// The restrictive factor `h = d / Σ Pᵢ` (useful when reporting on the
    /// Biskup–Feldmann benchmark classes).
    pub fn restrictive_factor(&self) -> f64 {
        self.due_date as f64 / self.total_processing as f64
    }

    /// Content hash of the instance: a stable FNV-1a digest of the problem
    /// kind, the due date and every job's data. Equal hashes identify (up to
    /// hash collisions) identical problems regardless of how they were
    /// constructed — the key the solver service's solution cache addresses
    /// by.
    pub fn content_hash(&self) -> u64 {
        let mut h = crate::solve::Fnv::new();
        h.write_u64(match self.kind {
            ProblemKind::Cdd => 1,
            ProblemKind::Ucddcp => 2,
        });
        h.write_i64(self.due_date);
        h.write_u64(self.jobs.len() as u64);
        for job in &self.jobs {
            h.write_i64(job.processing);
            h.write_i64(job.min_processing);
            h.write_i64(job.earliness_penalty);
            h.write_i64(job.tardiness_penalty);
            h.write_i64(job.compression_penalty);
        }
        h.finish()
    }

    /// Copy the per-job data into parallel arrays
    /// `(P, M, α, β, γ)` — the layout used by GPU kernels.
    pub fn to_arrays(&self) -> JobArrays {
        let p = self.jobs.iter().map(|j| j.processing).collect();
        let m = self.jobs.iter().map(|j| j.min_processing).collect();
        let a = self.jobs.iter().map(|j| j.earliness_penalty).collect();
        let b = self.jobs.iter().map(|j| j.tardiness_penalty).collect();
        let g = self.jobs.iter().map(|j| j.compression_penalty).collect();
        (p, m, a, b, g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_cdd_matches_table_i() {
        let inst = Instance::paper_example_cdd();
        assert_eq!(inst.n(), 5);
        assert_eq!(inst.due_date(), 16);
        assert_eq!(inst.total_processing(), 21);
        assert_eq!(inst.kind(), ProblemKind::Cdd);
        assert!(!inst.is_unrestricted()); // 16 < 21
        assert_eq!(inst.job(0).processing, 6);
        assert_eq!(inst.job(4).tardiness_penalty, 2);
    }

    #[test]
    fn paper_example_ucddcp_is_unrestricted() {
        let inst = Instance::paper_example_ucddcp();
        assert_eq!(inst.due_date(), 22);
        assert!(inst.is_unrestricted());
        assert_eq!(inst.job(3).min_processing, 3);
        assert_eq!(inst.job(4).compression_penalty, 1);
    }

    #[test]
    fn empty_instance_rejected() {
        assert_eq!(Instance::cdd(vec![], 10), Err(CoreError::EmptyInstance));
    }

    #[test]
    fn negative_due_date_rejected() {
        let err = Instance::cdd(vec![Job::cdd(1, 1, 1)], -1).unwrap_err();
        assert_eq!(err, CoreError::NegativeDueDate { due_date: -1 });
    }

    #[test]
    fn restricted_ucddcp_rejected() {
        let jobs = vec![Job::ucddcp(10, 5, 1, 1, 1), Job::ucddcp(10, 5, 1, 1, 1)];
        let err = Instance::ucddcp(jobs, 19).unwrap_err();
        assert_eq!(err, CoreError::RestrictedUcddcp { due_date: 19, total_processing: 20 });
    }

    #[test]
    fn ucddcp_due_date_equal_to_total_processing_accepted() {
        let jobs = vec![Job::ucddcp(10, 5, 1, 1, 1)];
        assert!(Instance::ucddcp(jobs, 10).is_ok());
    }

    #[test]
    fn bad_job_reported_with_index() {
        let jobs = vec![Job::cdd(5, 1, 1), Job::cdd(0, 1, 1)];
        assert!(matches!(
            Instance::cdd(jobs, 10),
            Err(CoreError::NonPositiveProcessingTime { job: 1, .. })
        ));
    }

    #[test]
    fn array_constructor_checks_lengths() {
        let err = Instance::cdd_from_arrays(&[1, 2], &[1], &[1, 1], 5).unwrap_err();
        assert!(matches!(err, CoreError::ArrayLengthMismatch { name: "earliness", .. }));
    }

    #[test]
    fn to_arrays_round_trips() {
        let inst = Instance::paper_example_ucddcp();
        let (p, m, a, b, g) = inst.to_arrays();
        assert_eq!(p, vec![6, 5, 2, 4, 4]);
        assert_eq!(m, vec![5, 5, 2, 3, 3]);
        assert_eq!(a, vec![7, 9, 6, 9, 3]);
        assert_eq!(b, vec![9, 5, 4, 3, 2]);
        assert_eq!(g, vec![5, 4, 3, 2, 1]);
    }

    #[test]
    fn content_hash_distinguishes_problems() {
        let cdd = Instance::paper_example_cdd();
        assert_eq!(cdd.content_hash(), Instance::paper_example_cdd().content_hash());
        assert_ne!(cdd.content_hash(), Instance::paper_example_ucddcp().content_hash());
        // Same job data, different due date.
        let other_d =
            Instance::cdd_from_arrays(&[6, 5, 2, 4, 4], &[7, 9, 6, 9, 3], &[9, 5, 4, 3, 2], 17)
                .unwrap();
        assert_ne!(cdd.content_hash(), other_d.content_hash());
    }

    #[test]
    fn restrictive_factor_matches_benchmark_definition() {
        let inst = Instance::cdd_from_arrays(&[10, 10], &[1, 1], &[1, 1], 8).unwrap();
        assert!((inst.restrictive_factor() - 0.4).abs() < 1e-12);
    }
}
