//! Fitness evaluation — the interface between layer (ii) (this crate's O(n)
//! fixed-sequence optimizers) and layer (i) (the metaheuristics in
//! `cdd-meta` / `cdd-gpu`).
//!
//! Evaluators cache the instance data in flat parallel arrays (the layout
//! the GPU kernels also use) so that the hot fitness loop touches contiguous
//! memory and performs zero allocation per call.

use crate::cdd_optimal::cdd_objective_raw;
use crate::ucddcp_optimal::ucddcp_objective_raw;
use crate::{Cost, Instance, ProblemKind, Time};

// The incremental counterpart lives in `crate::delta`; re-export it here so
// the evaluation layer's entry points sit side by side.
pub use crate::delta::{DeltaEvaluator, DeltaMove};

/// A fitness function over job sequences (lower is better).
///
/// Implementations must be cheap to call repeatedly: the metaheuristics
/// evaluate millions of sequences.
pub trait SequenceEvaluator: Sync {
    /// Number of jobs any evaluated sequence must have.
    fn n(&self) -> usize;

    /// Objective value of the sequence (a permutation of `0..n` given as a
    /// position → job-id slice).
    fn evaluate(&self, seq: &[u32]) -> Cost;
}

/// Zero-allocation CDD fitness function.
#[derive(Debug, Clone)]
pub struct CddEvaluator {
    p: Vec<Time>,
    alpha: Vec<Time>,
    beta: Vec<Time>,
    d: Time,
}

impl CddEvaluator {
    /// Cache the instance data. Works for both problem kinds (for UCDDCP it
    /// evaluates the *uncompressed* objective).
    pub fn new(inst: &Instance) -> Self {
        let (p, _, alpha, beta, _) = inst.to_arrays();
        CddEvaluator { p, alpha, beta, d: inst.due_date() }
    }
}

impl SequenceEvaluator for CddEvaluator {
    fn n(&self) -> usize {
        self.p.len()
    }

    #[inline]
    fn evaluate(&self, seq: &[u32]) -> Cost {
        debug_assert_eq!(seq.len(), self.p.len());
        cdd_objective_raw(&self.p, &self.alpha, &self.beta, self.d, seq)
    }
}

/// Zero-allocation UCDDCP fitness function.
#[derive(Debug, Clone)]
pub struct UcddcpEvaluator {
    p: Vec<Time>,
    m: Vec<Time>,
    alpha: Vec<Time>,
    beta: Vec<Time>,
    gamma: Vec<Time>,
    d: Time,
}

impl UcddcpEvaluator {
    /// Cache the instance data.
    ///
    /// # Panics
    /// Panics if the instance is not a UCDDCP instance.
    pub fn new(inst: &Instance) -> Self {
        assert_eq!(inst.kind(), ProblemKind::Ucddcp, "UcddcpEvaluator requires UCDDCP");
        let (p, m, alpha, beta, gamma) = inst.to_arrays();
        UcddcpEvaluator { p, m, alpha, beta, gamma, d: inst.due_date() }
    }
}

impl SequenceEvaluator for UcddcpEvaluator {
    fn n(&self) -> usize {
        self.p.len()
    }

    #[inline]
    fn evaluate(&self, seq: &[u32]) -> Cost {
        debug_assert_eq!(seq.len(), self.p.len());
        ucddcp_objective_raw(&self.p, &self.m, &self.alpha, &self.beta, &self.gamma, self.d, seq)
    }
}

/// Build the appropriate evaluator for an instance's problem kind.
///
/// The returned evaluator is `Sync` as well as `Send`: it holds only
/// immutable per-instance arrays, so concurrent simulated blocks (see
/// `cuda_sim::dispatch`) can share one evaluator without cloning.
pub fn evaluator_for(inst: &Instance) -> Box<dyn SequenceEvaluator + Send + Sync> {
    match inst.kind() {
        ProblemKind::Cdd => Box::new(CddEvaluator::new(inst)),
        ProblemKind::Ucddcp => Box::new(UcddcpEvaluator::new(inst)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{optimize_cdd_sequence, optimize_ucddcp_sequence, Instance, JobSequence};

    #[test]
    fn cdd_evaluator_matches_optimizer() {
        let inst = Instance::paper_example_cdd();
        let eval = CddEvaluator::new(&inst);
        let seq = JobSequence::identity(5);
        assert_eq!(eval.n(), 5);
        assert_eq!(eval.evaluate(seq.as_slice()), optimize_cdd_sequence(&inst, &seq).objective);
        assert_eq!(eval.evaluate(seq.as_slice()), 81);
    }

    #[test]
    fn ucddcp_evaluator_matches_optimizer() {
        let inst = Instance::paper_example_ucddcp();
        let eval = UcddcpEvaluator::new(&inst);
        let seq = JobSequence::from_vec(vec![3, 1, 4, 0, 2]).unwrap();
        assert_eq!(
            eval.evaluate(seq.as_slice()),
            optimize_ucddcp_sequence(&inst, &seq).objective
        );
    }

    #[test]
    fn evaluator_for_dispatches_on_kind() {
        let seq = JobSequence::identity(5);
        let e = evaluator_for(&Instance::paper_example_cdd());
        assert_eq!(e.evaluate(seq.as_slice()), 81);
        let e = evaluator_for(&Instance::paper_example_ucddcp());
        assert_eq!(e.evaluate(seq.as_slice()), 77);
    }

    #[test]
    #[should_panic(expected = "requires UCDDCP")]
    fn ucddcp_evaluator_rejects_cdd_instance() {
        UcddcpEvaluator::new(&Instance::paper_example_cdd());
    }
}
