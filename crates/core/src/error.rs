//! Error types for instance and sequence validation.

use std::fmt;

/// Errors produced when constructing or validating problem data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The instance has no jobs.
    EmptyInstance,
    /// A processing time is non-positive.
    NonPositiveProcessingTime { job: usize, value: i64 },
    /// A minimum processing time is out of the valid range `1 ..= Pᵢ`.
    InvalidMinProcessingTime { job: usize, min: i64, processing: i64 },
    /// A penalty rate is negative.
    NegativePenalty { job: usize, name: &'static str, value: i64 },
    /// The due date is negative.
    NegativeDueDate { due_date: i64 },
    /// A UCDDCP instance must be unrestricted: `d ≥ Σ Pᵢ`.
    RestrictedUcddcp { due_date: i64, total_processing: i64 },
    /// A job sequence is not a permutation of `0..n`.
    NotAPermutation { len: usize, detail: String },
    /// A sequence's length does not match the instance's job count.
    LengthMismatch { expected: usize, found: usize },
    /// Mismatched array lengths when building an instance from arrays.
    ArrayLengthMismatch { name: &'static str, expected: usize, found: usize },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::EmptyInstance => write!(f, "instance has no jobs"),
            CoreError::NonPositiveProcessingTime { job, value } => {
                write!(f, "job {job}: processing time must be >= 1, got {value}")
            }
            CoreError::InvalidMinProcessingTime { job, min, processing } => write!(
                f,
                "job {job}: minimum processing time {min} not in 1..={processing}"
            ),
            CoreError::NegativePenalty { job, name, value } => {
                write!(f, "job {job}: {name} penalty must be >= 0, got {value}")
            }
            CoreError::NegativeDueDate { due_date } => {
                write!(f, "due date must be >= 0, got {due_date}")
            }
            CoreError::RestrictedUcddcp { due_date, total_processing } => write!(
                f,
                "UCDDCP requires an unrestricted due date: d = {due_date} < Σ Pᵢ = {total_processing}"
            ),
            CoreError::NotAPermutation { len, detail } => {
                write!(f, "sequence of length {len} is not a permutation: {detail}")
            }
            CoreError::LengthMismatch { expected, found } => {
                write!(f, "sequence length {found} does not match instance size {expected}")
            }
            CoreError::ArrayLengthMismatch { name, expected, found } => {
                write!(f, "array `{name}` has length {found}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CoreError::NonPositiveProcessingTime { job: 3, value: 0 };
        assert!(e.to_string().contains("job 3"));
        assert!(e.to_string().contains('0'));

        let e = CoreError::RestrictedUcddcp { due_date: 5, total_processing: 21 };
        assert!(e.to_string().contains("unrestricted"));

        let e = CoreError::NotAPermutation { len: 4, detail: "duplicate 2".into() };
        assert!(e.to_string().contains("duplicate 2"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&CoreError::EmptyInstance);
    }
}
