//! Error types for instance and sequence validation.

use std::fmt;

/// Errors produced when constructing or validating problem data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The instance has no jobs.
    EmptyInstance,
    /// A processing time is non-positive.
    NonPositiveProcessingTime { job: usize, value: i64 },
    /// A minimum processing time is out of the valid range `1 ..= Pᵢ`.
    InvalidMinProcessingTime { job: usize, min: i64, processing: i64 },
    /// A penalty rate is negative.
    NegativePenalty { job: usize, name: &'static str, value: i64 },
    /// The due date is negative.
    NegativeDueDate { due_date: i64 },
    /// A UCDDCP instance must be unrestricted: `d ≥ Σ Pᵢ`.
    RestrictedUcddcp { due_date: i64, total_processing: i64 },
    /// A job sequence is not a permutation of `0..n`.
    NotAPermutation { len: usize, detail: String },
    /// A sequence's length does not match the instance's job count.
    LengthMismatch { expected: usize, found: usize },
    /// Mismatched array lengths when building an instance from arrays.
    ArrayLengthMismatch { name: &'static str, expected: usize, found: usize },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::EmptyInstance => write!(f, "instance has no jobs"),
            CoreError::NonPositiveProcessingTime { job, value } => {
                write!(f, "job {job}: processing time must be >= 1, got {value}")
            }
            CoreError::InvalidMinProcessingTime { job, min, processing } => write!(
                f,
                "job {job}: minimum processing time {min} not in 1..={processing}"
            ),
            CoreError::NegativePenalty { job, name, value } => {
                write!(f, "job {job}: {name} penalty must be >= 0, got {value}")
            }
            CoreError::NegativeDueDate { due_date } => {
                write!(f, "due date must be >= 0, got {due_date}")
            }
            CoreError::RestrictedUcddcp { due_date, total_processing } => write!(
                f,
                "UCDDCP requires an unrestricted due date: d = {due_date} < Σ Pᵢ = {total_processing}"
            ),
            CoreError::NotAPermutation { len, detail } => {
                write!(f, "sequence of length {len} is not a permutation: {detail}")
            }
            CoreError::LengthMismatch { expected, found } => {
                write!(f, "sequence length {found} does not match instance size {expected}")
            }
            CoreError::ArrayLengthMismatch { name, expected, found } => {
                write!(f, "array `{name}` has length {found}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

/// Umbrella error for whole-suite operations (GPU pipeline runs, campaign
/// cells, report I/O): everything a resilient runner must distinguish to
/// decide between *retry*, *CPU fallback* and *give up*.
///
/// Device errors are represented structurally (`detail` + `transient`)
/// rather than by wrapping the simulator's `LaunchError`, so `cdd-core`
/// stays independent of the simulator crate; `cdd-gpu` provides the
/// conversion.
#[derive(Debug, Clone, PartialEq)]
pub enum SuiteError {
    /// Invalid problem data or sequences.
    Core(CoreError),
    /// A device-side failure. `transient` marks faults where a retry can
    /// succeed (injected launch failures, watchdog kills) as opposed to
    /// genuine bugs (invalid launch configuration, data races).
    Device {
        /// Human-readable failure description.
        detail: String,
        /// Whether retrying the operation can succeed.
        transient: bool,
    },
    /// A device run completed but its result failed CPU-oracle validation
    /// beyond repair.
    CorruptResult {
        /// What the oracle rejected.
        detail: String,
    },
    /// A filesystem failure (journals, reports).
    Io {
        /// Path involved.
        path: String,
        /// Underlying error description.
        detail: String,
    },
    /// The solver service refused to admit the request (submission queue
    /// saturated, or the service is shutting down). The work was never
    /// started; the client may resubmit later.
    Rejected {
        /// Why admission control refused.
        reason: String,
    },
    /// The request's deadline expired before it was dispatched to a device;
    /// no device time was spent on it.
    DeadlineExceeded {
        /// The deadline the request carried, milliseconds.
        deadline_ms: u64,
    },
    /// The device died wholesale mid-run (injected worker crash or real
    /// hardware loss). Unlike a transient [`SuiteError::Device`] fault this
    /// is **not** recoverable *within* the run — the device is gone, so
    /// retrying on it is pointless; recovery belongs to whoever owns the
    /// device lifecycle (the service supervisor restarts the worker and
    /// re-dispatches elsewhere).
    DeviceLost {
        /// What was lost, as reported by the simulator.
        detail: String,
    },
    /// A service worker thread died (panic or injected crash) while running
    /// a request. Carries the panic payload so callers and logs see the
    /// cause instead of an opaque join error.
    WorkerCrashed {
        /// Pool device the dead worker was driving.
        device: usize,
        /// Stringified panic payload.
        payload: String,
    },
    /// A network peer violated the framed wire protocol (bad frame tag,
    /// oversized length prefix, truncated payload, version mismatch, failed
    /// authentication). Protocol errors are connection-scoped: the offending
    /// connection is answered with a structured error frame and may be
    /// closed, but the service itself never panics on adversarial input.
    Protocol {
        /// What the codec or handshake rejected.
        detail: String,
    },
    /// The tenant's token bucket is empty: the request was shed before
    /// admission. Unlike [`SuiteError::Rejected`] (global queue pressure)
    /// this is per-tenant back-pressure — other tenants are unaffected, and
    /// the client may retry after `retry_after_ms`.
    RateLimited {
        /// Tenant whose bucket ran dry.
        tenant: String,
        /// Milliseconds until the bucket refills enough for one request.
        retry_after_ms: u64,
    },
}

impl SuiteError {
    /// Build a device error.
    pub fn device(detail: impl Into<String>, transient: bool) -> Self {
        SuiteError::Device { detail: detail.into(), transient }
    }

    /// Build a corrupt-result error.
    pub fn corrupt(detail: impl Into<String>) -> Self {
        SuiteError::CorruptResult { detail: detail.into() }
    }

    /// Build an I/O error.
    pub fn io(path: impl Into<String>, detail: impl Into<String>) -> Self {
        SuiteError::Io { path: path.into(), detail: detail.into() }
    }

    /// Build an admission-control rejection.
    pub fn rejected(reason: impl Into<String>) -> Self {
        SuiteError::Rejected { reason: reason.into() }
    }

    /// Build a deadline-expiry error.
    pub fn deadline(deadline_ms: u64) -> Self {
        SuiteError::DeadlineExceeded { deadline_ms }
    }

    /// Build a device-lost error.
    pub fn device_lost(detail: impl Into<String>) -> Self {
        SuiteError::DeviceLost { detail: detail.into() }
    }

    /// Build a worker-crash error from a joined panic payload.
    pub fn worker_crashed(device: usize, payload: impl Into<String>) -> Self {
        SuiteError::WorkerCrashed { device, payload: payload.into() }
    }

    /// Build a wire-protocol violation error.
    pub fn protocol(detail: impl Into<String>) -> Self {
        SuiteError::Protocol { detail: detail.into() }
    }

    /// Build a per-tenant rate-limit rejection.
    pub fn rate_limited(tenant: impl Into<String>, retry_after_ms: u64) -> Self {
        SuiteError::RateLimited { tenant: tenant.into(), retry_after_ms }
    }

    /// Whether a whole-run retry (fresh device attempt or CPU fallback) is a
    /// sensible response. Core/config errors are deterministic and would
    /// fail again; transient device faults and corrupted results are not.
    pub fn is_recoverable(&self) -> bool {
        matches!(
            self,
            SuiteError::Device { transient: true, .. } | SuiteError::CorruptResult { .. }
        )
    }
}

impl fmt::Display for SuiteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuiteError::Core(e) => write!(f, "{e}"),
            SuiteError::Device { detail, transient: true } => {
                write!(f, "transient device failure: {detail}")
            }
            SuiteError::Device { detail, transient: false } => {
                write!(f, "device failure: {detail}")
            }
            SuiteError::CorruptResult { detail } => {
                write!(f, "result failed oracle validation: {detail}")
            }
            SuiteError::Io { path, detail } => write!(f, "io error on {path}: {detail}"),
            SuiteError::Rejected { reason } => write!(f, "request rejected: {reason}"),
            SuiteError::DeadlineExceeded { deadline_ms } => {
                write!(f, "deadline of {deadline_ms} ms expired before dispatch")
            }
            SuiteError::DeviceLost { detail } => write!(f, "{detail}"),
            SuiteError::WorkerCrashed { device, payload } => {
                write!(f, "worker for device {device} crashed: {payload}")
            }
            SuiteError::Protocol { detail } => write!(f, "protocol error: {detail}"),
            SuiteError::RateLimited { tenant, retry_after_ms } => {
                write!(f, "tenant {tenant:?} rate limited; retry after {retry_after_ms} ms")
            }
        }
    }
}

impl std::error::Error for SuiteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SuiteError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for SuiteError {
    fn from(e: CoreError) -> Self {
        SuiteError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CoreError::NonPositiveProcessingTime { job: 3, value: 0 };
        assert!(e.to_string().contains("job 3"));
        assert!(e.to_string().contains('0'));

        let e = CoreError::RestrictedUcddcp { due_date: 5, total_processing: 21 };
        assert!(e.to_string().contains("unrestricted"));

        let e = CoreError::NotAPermutation { len: 4, detail: "duplicate 2".into() };
        assert!(e.to_string().contains("duplicate 2"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&CoreError::EmptyInstance);
        takes_err(&SuiteError::corrupt("x"));
    }

    #[test]
    fn recoverability_split() {
        assert!(SuiteError::device("launch failed", true).is_recoverable());
        assert!(SuiteError::corrupt("bad winner row").is_recoverable());
        assert!(!SuiteError::device("data race", false).is_recoverable());
        assert!(!SuiteError::from(CoreError::EmptyInstance).is_recoverable());
        assert!(!SuiteError::io("a.csv", "denied").is_recoverable());
        // Service-level refusals are not device faults: retrying on another
        // device cannot help (resubmission is a client decision).
        assert!(!SuiteError::rejected("queue full").is_recoverable());
        assert!(!SuiteError::deadline(50).is_recoverable());
        // A lost device cannot be retried *in place* — the supervision
        // layer owns the recovery, so the pipeline must surface it.
        assert!(!SuiteError::device_lost("device lost: crash at launch 3").is_recoverable());
        assert!(!SuiteError::worker_crashed(1, "injected").is_recoverable());
        // A protocol violation is deterministic (the bytes are wrong) and a
        // rate-limit shed is a client decision — neither is a device retry.
        assert!(!SuiteError::protocol("unknown frame tag 0x7f").is_recoverable());
        assert!(!SuiteError::rate_limited("acme", 40).is_recoverable());
    }

    #[test]
    fn service_errors_display_their_cause() {
        assert!(SuiteError::rejected("queue full (capacity 8)").to_string().contains("capacity 8"));
        assert!(SuiteError::deadline(250).to_string().contains("250 ms"));
        let lost = SuiteError::device_lost("device lost: worker crashed before kernel `fitness`");
        assert!(lost.to_string().contains("device lost"));
        let crashed = SuiteError::worker_crashed(3, "injected device loss");
        assert!(crashed.to_string().contains("device 3"));
        assert!(crashed.to_string().contains("injected device loss"), "payload must surface");
        let proto = SuiteError::protocol("length prefix 4294967295 exceeds frame cap");
        assert!(proto.to_string().contains("length prefix"));
        let limited = SuiteError::rate_limited("acme", 125);
        assert!(limited.to_string().contains("acme"));
        assert!(limited.to_string().contains("125 ms"));
    }

    #[test]
    fn suite_error_wraps_core_error() {
        let e = SuiteError::from(CoreError::NegativeDueDate { due_date: -1 });
        assert!(e.to_string().contains("due date"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
