//! Job sequences: validated permutations of `0..n`.

use crate::CoreError;
use rand::seq::SliceRandom;
use rand::Rng;

/// A processing order of the jobs — a permutation of the job indices
/// `0 ..= n-1`. Position `k` of the sequence holds the index of the job
/// processed `k`-th on the machine.
///
/// `JobSequence` guarantees the permutation invariant at construction; the
/// mutating operators ([`swap`](Self::swap),
/// [`shuffle_window`](Self::shuffle_window), …) preserve it by construction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JobSequence(Vec<u32>);

impl JobSequence {
    /// The identity sequence `0, 1, …, n-1`.
    pub fn identity(n: usize) -> Self {
        JobSequence((0..n as u32).collect())
    }

    /// A uniformly random permutation of `0..n`.
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        let mut v: Vec<u32> = (0..n as u32).collect();
        v.shuffle(rng);
        JobSequence(v)
    }

    /// Validate and wrap an explicit order.
    pub fn from_vec(order: Vec<u32>) -> Result<Self, CoreError> {
        let n = order.len();
        let mut seen = vec![false; n];
        for &j in &order {
            let j = j as usize;
            if j >= n {
                return Err(CoreError::NotAPermutation {
                    len: n,
                    detail: format!("index {j} out of range 0..{n}"),
                });
            }
            if seen[j] {
                return Err(CoreError::NotAPermutation {
                    len: n,
                    detail: format!("duplicate index {j}"),
                });
            }
            seen[j] = true;
        }
        Ok(JobSequence(order))
    }

    /// Number of jobs.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the sequence is empty (never true for sequences built from a
    /// validated [`crate::Instance`], which has `n ≥ 1`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The job processed at position `k`.
    #[inline]
    pub fn job_at(&self, k: usize) -> u32 {
        self.0[k]
    }

    /// The raw order as a slice (position → job index).
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.0
    }

    /// Consume into the raw order vector.
    pub fn into_vec(self) -> Vec<u32> {
        self.0
    }

    /// Swap the jobs at positions `a` and `b`.
    #[inline]
    pub fn swap(&mut self, a: usize, b: usize) {
        self.0.swap(a, b);
    }

    /// Fisher–Yates-shuffle the window of `size` positions starting at
    /// `start` (the paper's perturbation: a random window of `Pert = 4` jobs
    /// is reshuffled while every other position keeps its job).
    ///
    /// The window is clamped to the sequence end.
    pub fn shuffle_window<R: Rng + ?Sized>(&mut self, start: usize, size: usize, rng: &mut R) {
        let end = (start + size).min(self.0.len());
        self.0[start..end].shuffle(rng);
    }

    /// Remove the job at position `from` and reinsert it at position `to`
    /// (shifting the in-between jobs) — the classic *insert* neighborhood.
    pub fn insert_move(&mut self, from: usize, to: usize) {
        if from == to {
            return;
        }
        let job = self.0.remove(from);
        self.0.insert(to, job);
    }

    /// Reverse the segment `[a, b]` (inclusive) — a 2-opt style move.
    pub fn reverse_segment(&mut self, a: usize, b: usize) {
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.0[a..=b].reverse();
    }

    /// Check the permutation invariant (used by debug assertions and tests;
    /// the public constructors make violation impossible in safe code).
    pub fn is_valid_permutation(&self) -> bool {
        let n = self.0.len();
        let mut seen = vec![false; n];
        self.0.iter().all(|&j| {
            let j = j as usize;
            j < n && !std::mem::replace(&mut seen[j], true)
        })
    }
}

impl AsRef<[u32]> for JobSequence {
    fn as_ref(&self) -> &[u32] {
        &self.0
    }
}

impl std::ops::Index<usize> for JobSequence {
    type Output = u32;
    fn index(&self, k: usize) -> &u32 {
        &self.0[k]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_is_sorted() {
        let s = JobSequence::identity(5);
        assert_eq!(s.as_slice(), &[0, 1, 2, 3, 4]);
        assert!(s.is_valid_permutation());
    }

    #[test]
    fn random_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1usize, 2, 10, 100] {
            let s = JobSequence::random(n, &mut rng);
            assert_eq!(s.len(), n);
            assert!(s.is_valid_permutation());
        }
    }

    #[test]
    fn from_vec_rejects_duplicates_and_out_of_range() {
        assert!(matches!(
            JobSequence::from_vec(vec![0, 1, 1]),
            Err(CoreError::NotAPermutation { .. })
        ));
        assert!(matches!(
            JobSequence::from_vec(vec![0, 3]),
            Err(CoreError::NotAPermutation { .. })
        ));
        assert!(JobSequence::from_vec(vec![2, 0, 1]).is_ok());
    }

    #[test]
    fn swap_preserves_permutation() {
        let mut s = JobSequence::identity(4);
        s.swap(0, 3);
        assert_eq!(s.as_slice(), &[3, 1, 2, 0]);
        assert!(s.is_valid_permutation());
    }

    #[test]
    fn shuffle_window_only_touches_window() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut s = JobSequence::identity(10);
        s.shuffle_window(3, 4, &mut rng);
        // Outside the window untouched.
        assert_eq!(&s.as_slice()[..3], &[0, 1, 2]);
        assert_eq!(&s.as_slice()[7..], &[7, 8, 9]);
        // Window is a permutation of {3,4,5,6}.
        let mut w: Vec<u32> = s.as_slice()[3..7].to_vec();
        w.sort_unstable();
        assert_eq!(w, vec![3, 4, 5, 6]);
        assert!(s.is_valid_permutation());
    }

    #[test]
    fn shuffle_window_clamps_at_end() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = JobSequence::identity(5);
        s.shuffle_window(3, 10, &mut rng);
        assert!(s.is_valid_permutation());
        assert_eq!(&s.as_slice()[..3], &[0, 1, 2]);
    }

    #[test]
    fn insert_move_shifts_between() {
        let mut s = JobSequence::identity(5);
        s.insert_move(0, 3);
        assert_eq!(s.as_slice(), &[1, 2, 3, 0, 4]);
        s.insert_move(3, 0);
        assert_eq!(s.as_slice(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn reverse_segment_handles_unordered_bounds() {
        let mut s = JobSequence::identity(5);
        s.reverse_segment(3, 1);
        assert_eq!(s.as_slice(), &[0, 3, 2, 1, 4]);
    }
}
