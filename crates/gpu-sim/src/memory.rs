//! Simulated device memory: global buffers and constant memory.
//!
//! Storage is untyped (`u64` bit patterns) behind typed [`Buf<T>`] handles,
//! mirroring how CUDA device pointers are raw addresses with types applied
//! by the kernel code.

use std::marker::PhantomData;

/// Value types storable in simulated device memory.
pub trait DeviceValue: Copy + Default + 'static {
    /// Encode as a 64-bit pattern.
    fn to_bits(self) -> u64;
    /// Decode from a 64-bit pattern.
    fn from_bits(bits: u64) -> Self;
}

macro_rules! impl_device_value_int {
    ($($t:ty),*) => {$(
        impl DeviceValue for $t {
            #[inline]
            fn to_bits(self) -> u64 { self as u64 }
            #[inline]
            fn from_bits(bits: u64) -> Self { bits as $t }
        }
    )*};
}
impl_device_value_int!(u8, u16, u32, u64, i8, i16, i32, i64, usize);

impl DeviceValue for f64 {
    #[inline]
    fn to_bits(self) -> u64 {
        self.to_bits()
    }
    #[inline]
    fn from_bits(bits: u64) -> Self {
        f64::from_bits(bits)
    }
}

impl DeviceValue for f32 {
    #[inline]
    fn to_bits(self) -> u64 {
        self.to_bits() as u64
    }
    #[inline]
    fn from_bits(bits: u64) -> Self {
        f32::from_bits(bits as u32)
    }
}

/// Typed handle to a global-memory buffer (cheap to copy, like a device
/// pointer).
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct Buf<T> {
    pub(crate) id: usize,
    pub(crate) len: usize,
    _ph: PhantomData<fn() -> T>,
}

impl<T> Clone for Buf<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Buf<T> {}

impl<T> Buf<T> {
    pub(crate) fn new(id: usize, len: usize) -> Self {
        Buf { id, len, _ph: PhantomData }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drop the type for kernel-argument passing.
    pub fn erased(self) -> ErasedBuf {
        ErasedBuf { id: self.id, len: self.len }
    }
}

/// Untyped buffer handle (a kernel argument, like a `void*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ErasedBuf {
    pub(crate) id: usize,
    pub(crate) len: usize,
}

impl ErasedBuf {
    /// Element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Re-apply a type (the kernel-side cast of a `void*` argument).
    pub fn typed<T>(self) -> Buf<T> {
        Buf::new(self.id, self.len)
    }
}

/// Typed handle to a constant-memory region (read-only on device, broadcast
/// reads — the paper stores `d` and `n` there "to benefit from its broadcast
/// mechanism").
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct ConstBuf<T> {
    pub(crate) id: usize,
    pub(crate) len: usize,
    _ph: PhantomData<fn() -> T>,
}

impl<T> Clone for ConstBuf<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for ConstBuf<T> {}

impl<T> ConstBuf<T> {
    pub(crate) fn new(id: usize, len: usize) -> Self {
        ConstBuf { id, len, _ph: PhantomData }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the region holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The device's memory: global buffers + constant regions.
#[derive(Debug, Default)]
pub(crate) struct MemoryPool {
    pub(crate) global: Vec<Vec<u64>>,
    pub(crate) constant: Vec<Vec<u64>>,
    pub(crate) constant_bytes: usize,
}

impl MemoryPool {
    pub(crate) fn alloc(&mut self, len: usize) -> usize {
        self.global.push(vec![0u64; len]);
        self.global.len() - 1
    }

    pub(crate) fn alloc_const(&mut self, words: Vec<u64>) -> usize {
        self.constant_bytes += words.len() * 8;
        self.constant.push(words);
        self.constant.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_round_trips() {
        assert_eq!(i64::from_bits((-5i64).to_bits()), -5);
        assert_eq!(u32::from_bits(7u32.to_bits()), 7);
        assert_eq!(f64::from_bits((0.25f64).to_bits()), 0.25);
        assert_eq!(f32::from_bits((-1.5f32).to_bits()), -1.5);
        assert_eq!(i32::from_bits((-1i32).to_bits()), -1);
    }

    #[test]
    fn negative_i64_survives() {
        let v: i64 = i64::MIN + 3;
        assert_eq!(i64::from_bits(v.to_bits()), v);
    }

    #[test]
    fn erased_round_trip() {
        let b: Buf<i64> = Buf::new(3, 10);
        let e = b.erased();
        assert_eq!(e.len(), 10);
        let t: Buf<i64> = e.typed();
        assert_eq!(t, b);
    }

    #[test]
    fn pool_allocates_zeroed() {
        let mut p = MemoryPool::default();
        let id = p.alloc(4);
        assert_eq!(p.global[id], vec![0u64; 4]);
        let cid = p.alloc_const(vec![1, 2]);
        assert_eq!(p.constant[cid], vec![1, 2]);
        assert_eq!(p.constant_bytes, 16);
    }
}
