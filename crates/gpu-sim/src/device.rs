//! Device specifications: the hardware parameters of the performance model.

use crate::dispatch::SimParallelism;

/// Static description of a simulated CUDA device.
///
/// The defaults mirror the paper's evaluation card (GeForce GT 560M); an
/// alternative preset gives a larger Kepler-class device for scaling
/// studies. All rates are in SI units (Hz, bytes/second).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name (reports only).
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: usize,
    /// Threads per warp (32 on every CUDA device).
    pub warp_size: usize,
    /// Hardware limit on threads per block.
    pub max_threads_per_block: usize,
    /// Hardware limit on resident warps per SM (occupancy bound).
    pub max_warps_per_sm: usize,
    /// Shared memory per block, bytes.
    pub shared_mem_per_block: usize,
    /// Constant memory size, bytes.
    pub constant_mem_bytes: usize,
    /// Shader (SM) clock, Hz.
    pub clock_hz: f64,
    /// Global memory bandwidth, bytes/second (whole device).
    pub mem_bandwidth: f64,
    /// Host↔device (PCIe) bandwidth, bytes/second.
    pub pcie_bandwidth: f64,
    /// Fixed latency per host↔device transfer, seconds.
    pub pcie_latency: f64,
    /// Fixed overhead per kernel launch, seconds.
    pub launch_overhead: f64,
    /// Cycles per warp-wide ALU instruction.
    pub cpi_alu: f64,
    /// Cycles per warp-wide special-function instruction (exp, log, …).
    pub cpi_sfu: f64,
    /// Cycles per warp-wide shared-memory access (plus one per bank
    /// conflict).
    pub cpi_shared: f64,
    /// Cycles per serialized atomic operation (L2 round trip).
    pub cpi_atomic: f64,
    /// Bytes moved per global-memory transaction (one cache line segment).
    pub transaction_bytes: f64,
    /// Cycles to synchronize a block at a barrier (per phase boundary).
    pub sync_cycles: f64,
    /// Host threads used to *execute* the blocks of a launch. Pure
    /// wall-clock knob: modeled timing, results, fault streams, metrics and
    /// traces are byte-identical at every setting (DESIGN.md §11). Defaults
    /// to [`SimParallelism::Serial`]; opt in via `--sim-threads`,
    /// `CDD_SIM_THREADS`, or [`crate::Gpu::set_parallelism`].
    pub parallelism: SimParallelism,
}

impl DeviceSpec {
    /// The paper's evaluation card: GeForce **GT 560M** (192 CUDA cores on
    /// 4 SMs, 2 GB, laptop PCIe). The paper quotes the 1024-thread block
    /// limit of its device.
    pub fn gt560m() -> Self {
        DeviceSpec {
            name: "GeForce GT 560M (simulated)".into(),
            sm_count: 4,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_warps_per_sm: 48,
            shared_mem_per_block: 48 * 1024,
            constant_mem_bytes: 64 * 1024,
            clock_hz: 1.55e9,
            mem_bandwidth: 60.0e9,
            pcie_bandwidth: 6.0e9,
            pcie_latency: 10e-6,
            launch_overhead: 5e-6,
            cpi_alu: 1.0,
            cpi_sfu: 8.0,
            cpi_shared: 1.0,
            cpi_atomic: 40.0,
            transaction_bytes: 32.0,
            sync_cycles: 64.0,
            parallelism: SimParallelism::Serial,
        }
    }

    /// A larger desktop Kepler-class device (for scaling ablations).
    pub fn generic_kepler() -> Self {
        DeviceSpec {
            name: "Generic Kepler-class (simulated)".into(),
            sm_count: 8,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_warps_per_sm: 64,
            shared_mem_per_block: 48 * 1024,
            constant_mem_bytes: 64 * 1024,
            clock_hz: 1.0e9,
            mem_bandwidth: 190.0e9,
            pcie_bandwidth: 12.0e9,
            pcie_latency: 8e-6,
            launch_overhead: 4e-6,
            cpi_alu: 1.0,
            cpi_sfu: 8.0,
            cpi_shared: 1.0,
            cpi_atomic: 30.0,
            transaction_bytes: 32.0,
            sync_cycles: 48.0,
            parallelism: SimParallelism::Serial,
        }
    }

    /// Memory bandwidth available to one SM, bytes per SM clock cycle.
    pub fn mem_bytes_per_sm_cycle(&self) -> f64 {
        self.mem_bandwidth / self.sm_count as f64 / self.clock_hz
    }

    /// Modeled duration of one host↔device transfer of `bytes`.
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        self.pcie_latency + bytes as f64 / self.pcie_bandwidth
    }
}

impl Default for DeviceSpec {
    fn default() -> Self {
        Self::gt560m()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gt560m_matches_paper_constraints() {
        let d = DeviceSpec::gt560m();
        assert_eq!(d.warp_size, 32);
        assert_eq!(d.max_threads_per_block, 1024); // quoted in Section VIII
        assert_eq!(d.sm_count, 4);
        // The paper's configuration (4 blocks × 192 threads) fits the card.
        assert!(192 <= d.max_threads_per_block);
        assert!(192 / d.warp_size <= d.max_warps_per_sm);
    }

    #[test]
    fn transfer_time_has_latency_floor() {
        let d = DeviceSpec::gt560m();
        let tiny = d.transfer_time(8);
        let big = d.transfer_time(100_000_000);
        assert!(tiny >= d.pcie_latency);
        assert!(big > 100_000_000.0 / d.pcie_bandwidth);
        assert!(big > tiny * 100.0);
    }

    #[test]
    fn per_sm_bandwidth_is_fraction_of_total() {
        let d = DeviceSpec::gt560m();
        let per_sm = d.mem_bytes_per_sm_cycle();
        assert!(per_sm > 0.0);
        let total_per_cycle = d.mem_bandwidth / d.clock_hz;
        assert!((per_sm * d.sm_count as f64 - total_per_cycle).abs() < 1e-9);
    }

    #[test]
    fn default_is_the_paper_card() {
        assert_eq!(DeviceSpec::default(), DeviceSpec::gt560m());
    }
}
