//! Device-pool handles: the identity, configuration and accumulated usage
//! of one simulated device inside a multi-device pool.
//!
//! A [`DeviceHandle`] is *not* a live [`crate::Gpu`] — the pipelines build a
//! fresh `Gpu` per run (real campaign runners likewise re-establish a CUDA
//! context per attempt after faults). The handle carries what persists
//! across runs on a pool member: which [`DeviceSpec`] to instantiate, the
//! device's base [`FaultPlan`], and the usage counters a pool aggregates for
//! utilization reporting ([`DeviceUsage`]).
//!
//! **Determinism note.** [`DeviceHandle::request_plan`] derives the
//! effective fault plan for one request purely from the base plan and the
//! request seed — the device *id* is deliberately not mixed in. A pool whose
//! members share one base plan therefore produces request outcomes that do
//! not depend on routing, which is what lets a service keep its
//! identical-fitness-per-seed contract while scheduling on the wall clock.

use crate::device::DeviceSpec;
use crate::fault::{FaultPlan, FaultStats};
use crate::profiler::ProfilerAggregate;
use cdd_metrics::MetricsRegistry;

/// Accumulated usage of one pool device across many runs.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct DeviceUsage {
    /// Modeled device time, aggregated over every run's profiler window.
    pub modeled: ProfilerAggregate,
    /// Wall-clock seconds the device's worker spent executing runs (host
    /// time — the denominator of real-throughput accounting).
    pub busy_wall_seconds: f64,
    /// Requests that completed on this device (successfully or not).
    pub requests: u64,
    /// Requests that ended in an error on this device.
    pub failed: u64,
    /// Faults injected across all runs on this device.
    pub faults: FaultStats,
}

impl DeviceUsage {
    /// Fold one run's numbers into the usage record.
    pub fn record_run(
        &mut self,
        modeled_total: f64,
        modeled_kernel: f64,
        modeled_transfer: f64,
        launches: usize,
        wall_seconds: f64,
        failed: bool,
    ) {
        self.modeled.record(modeled_total, modeled_kernel, modeled_transfer, launches);
        self.busy_wall_seconds += wall_seconds;
        self.requests += 1;
        if failed {
            self.failed += 1;
        }
    }

    /// Merge another device's fault counters (per-run `Gpu::fault_stats`).
    pub fn merge_faults(&mut self, f: FaultStats) {
        self.faults.launches_attempted += f.launches_attempted;
        self.faults.transient_launch_failures += f.transient_launch_failures;
        self.faults.bit_flips += f.bit_flips;
        self.faults.hung_kernels += f.hung_kernels;
        self.faults.worker_crashes += f.worker_crashes;
    }

    /// Fold the usage record into a metrics registry under the `device_`
    /// namespace, labelled `{device="<device>"}`. Counters here are split
    /// per device — which requests landed where depends on wall-clock worker
    /// scheduling — so the whole namespace is timing-*dependent* and is
    /// deliberately kept out of the `service_` prefix that CI byte-compares.
    pub fn observe_into(&self, registry: &mut MetricsRegistry, device: &str, wall_seconds: f64) {
        let labels: &[(&str, &str)] = &[("device", device)];
        registry.inc("device_requests_total", labels, self.requests);
        registry.inc("device_failed_total", labels, self.failed);
        registry.inc("device_kernel_launches_total", labels, self.modeled.kernel_launches as u64);
        registry.set_gauge("device_modeled_busy_seconds", labels, self.modeled.busy_seconds);
        registry.set_gauge("device_busy_wall_seconds", labels, self.busy_wall_seconds);
        registry.set_gauge("device_utilization", labels, self.utilization(wall_seconds));
        self.faults.observe_into(registry, "device_fault", labels);
    }

    /// Busy-wall-seconds / window-wall-seconds utilization of the device.
    #[must_use]
    pub fn utilization(&self, wall_seconds: f64) -> f64 {
        if wall_seconds <= 0.0 {
            0.0
        } else {
            self.busy_wall_seconds / wall_seconds
        }
    }
}

/// One member of a device pool.
#[derive(Debug, Clone)]
pub struct DeviceHandle {
    /// Pool-local device index.
    pub id: usize,
    /// Hardware description used to instantiate the device's `Gpu` runs.
    pub spec: DeviceSpec,
    /// Base fault plan of this device (`None` = healthy device).
    pub fault: Option<FaultPlan>,
    /// Accumulated usage.
    pub usage: DeviceUsage,
}

impl DeviceHandle {
    /// A healthy device.
    pub fn new(id: usize, spec: DeviceSpec) -> Self {
        DeviceHandle { id, spec, fault: None, usage: DeviceUsage::default() }
    }

    /// The same device with a base fault plan installed.
    #[must_use]
    pub fn with_fault(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Derive the fault plan for one request: the base plan reseeded by the
    /// request seed (SplitMix64-mixed so nearby seeds decorrelate). Pure in
    /// `(base plan, request_seed)` — independent of the device id and of any
    /// previous request, so rerouting or reordering requests cannot change a
    /// request's fault sequence.
    #[must_use]
    pub fn request_plan(&self, request_seed: u64) -> Option<FaultPlan> {
        self.fault.as_ref().map(|p| {
            let mut z = p.seed ^ request_seed.rotate_left(31);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            p.reseeded(z ^ (z >> 31))
        })
    }

    /// [`request_plan`](Self::request_plan) for the `retry`-th service-level
    /// re-dispatch of a request. Retry 0 is the original dispatch and
    /// returns exactly `request_plan(request_seed)`; each later retry
    /// decorrelates the seed so a crashing fault draw is not replayed
    /// verbatim — while staying a pure function of
    /// `(base plan, request seed, retry)`. The *sequence* of plans a request
    /// walks through is therefore identical across runs no matter which
    /// devices the retries land on, which is what makes the service's
    /// crash/retry/degrade trajectory deterministic (DESIGN.md §12).
    #[must_use]
    pub fn request_plan_retry(&self, request_seed: u64, retry: u32) -> Option<FaultPlan> {
        self.request_plan(request_seed).map(|p| {
            if retry == 0 {
                p
            } else {
                let mut z = p.seed ^ 0x9e3779b97f4a7c15u64.wrapping_mul(u64::from(retry));
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                p.reseeded(z ^ (z >> 31))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_device_has_no_request_plan() {
        let h = DeviceHandle::new(0, DeviceSpec::gt560m());
        assert!(h.request_plan(42).is_none());
        assert_eq!(h.usage, DeviceUsage::default());
    }

    #[test]
    fn request_plans_are_deterministic_and_device_independent() {
        let base = FaultPlan::with_rates(9, 0.05, 0.01, 0.02);
        let dev0 = DeviceHandle::new(0, DeviceSpec::gt560m()).with_fault(base.clone());
        let dev3 = DeviceHandle::new(3, DeviceSpec::gt560m()).with_fault(base.clone());
        let a = dev0.request_plan(1234).unwrap();
        let b = dev0.request_plan(1234).unwrap();
        let c = dev3.request_plan(1234).unwrap();
        assert_eq!(a, b, "same request, same plan");
        assert_eq!(a, c, "routing to another identically-configured device changes nothing");
        assert_ne!(a.seed, dev0.request_plan(1235).unwrap().seed, "requests decorrelate");
        assert_eq!(a.launch_failure_rate, base.launch_failure_rate, "rates carry over");
    }

    #[test]
    fn retry_plans_decorrelate_but_stay_routing_independent() {
        let base = FaultPlan::with_rates(9, 0.05, 0.0, 0.0).with_worker_crash(0.3, 16);
        let dev0 = DeviceHandle::new(0, DeviceSpec::gt560m()).with_fault(base.clone());
        let dev5 = DeviceHandle::new(5, DeviceSpec::gt560m()).with_fault(base);
        let r0 = dev0.request_plan_retry(42, 0).unwrap();
        assert_eq!(r0, dev0.request_plan(42).unwrap(), "retry 0 is the original dispatch");
        let r1 = dev0.request_plan_retry(42, 1).unwrap();
        let r2 = dev0.request_plan_retry(42, 2).unwrap();
        assert_ne!(r0.seed, r1.seed);
        assert_ne!(r1.seed, r2.seed);
        assert_eq!(r1, dev5.request_plan_retry(42, 1).unwrap(), "device id never enters");
        assert_eq!(r1.worker_crash_rate, 0.3, "rates carry over to retries");
    }

    #[test]
    fn usage_accumulates_runs_and_utilization() {
        let mut u = DeviceUsage::default();
        u.record_run(0.010, 0.008, 0.002, 40, 0.5, false);
        u.record_run(0.020, 0.015, 0.005, 80, 1.5, true);
        assert_eq!(u.requests, 2);
        assert_eq!(u.failed, 1);
        assert_eq!(u.modeled.kernel_launches, 120);
        assert!((u.modeled.busy_seconds - 0.030).abs() < 1e-12);
        assert!((u.busy_wall_seconds - 2.0).abs() < 1e-12);
        assert!((u.utilization(4.0) - 0.5).abs() < 1e-12);
        assert_eq!(u.utilization(0.0), 0.0);
    }

    #[test]
    fn observe_into_labels_series_by_device() {
        let mut u = DeviceUsage::default();
        u.record_run(0.010, 0.008, 0.002, 40, 0.5, false);
        u.merge_faults(FaultStats { launches_attempted: 40, ..Default::default() });
        let mut reg = cdd_metrics::MetricsRegistry::new();
        u.observe_into(&mut reg, "2", 1.0);
        let labels: &[(&str, &str)] = &[("device", "2")];
        assert_eq!(reg.counter("device_requests_total", labels), 1);
        assert_eq!(reg.counter("device_kernel_launches_total", labels), 40);
        assert_eq!(reg.counter("device_fault_launches_attempted_total", labels), 40);
        assert!((reg.gauge("device_utilization", labels).unwrap() - 0.5).abs() < 1e-12);
        assert!(reg.render_prometheus().contains("device_requests_total{device=\"2\"} 1"));
    }

    #[test]
    fn fault_merge_sums_counters() {
        let mut u = DeviceUsage::default();
        u.merge_faults(FaultStats {
            launches_attempted: 10,
            transient_launch_failures: 2,
            bit_flips: 1,
            hung_kernels: 1,
            worker_crashes: 1,
        });
        u.merge_faults(FaultStats { launches_attempted: 5, ..Default::default() });
        assert_eq!(u.faults.launches_attempted, 15);
        assert_eq!(u.faults.transient_launch_failures, 2);
    }
}
