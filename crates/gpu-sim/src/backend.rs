//! Execution backends: the simulator and the native host path behind one
//! trait (DESIGN.md §16).
//!
//! [`ExecBackend`] is the device surface the *pipelines* program against —
//! allocation, transfers, kernel launches, spans, fault plumbing — mirroring
//! how [`crate::engine::DeviceCtx`] is the surface the *kernels* program
//! against. Two implementations exist:
//!
//! * [`Gpu`] — the cuda-sim device: modeled clock, per-access cost
//!   accounting, fault injection, race detection, profiler timeline.
//! * [`NativeGpu`] — the native host backend: the same kernel bodies run
//!   directly on host threads through the PR-5 [`WorkerPool`], with **no**
//!   modeled clock, no per-access simulation, and no fault machinery on the
//!   hot path. This is the deployment path when you actually have cores.
//!
//! The contract between them is **byte-identity**: with the same inputs,
//! seeds and launch sequence, both backends leave bit-identical values in
//! device memory. That holds by construction because (a) kernels execute
//! the exact same `phase` code through [`DeviceCtx`], (b) XORWOW streams
//! are device-resident data, and (c) the native backend stages atomics per
//! block and merges them in block-index order through the *same*
//! [`AtomicStage`] type the simulator uses. What the native backend does
//! not produce: modeled seconds (all zero), a profiler timeline (empty),
//! fault injection and telemetry (sim-only; installing an active fault
//! plan panics, and the pipelines reject such requests before any launch).

use crate::device::DeviceSpec;
use crate::dispatch::{SimParallelism, WorkerPool};
use crate::engine::{
    AsBuf, AtomicOp, AtomicStage, DeviceCtx, Gpu, Kernel, LaunchError, MemView,
};
use crate::fault::{FaultPlan, FaultStats};
use crate::grid::LaunchConfig;
use crate::memory::{Buf, ConstBuf, DeviceValue, ErasedBuf, MemoryPool};
use crate::profiler::TimelineEvent;
use crate::rng::XorWow;
use std::fmt;
use std::str::FromStr;
use std::sync::Mutex;

/// Which execution backend runs a pipeline's launches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// cuda-sim: semantic fidelity, modeled time, fault injection,
    /// telemetry, race detection. The verification/replay/chaos path.
    #[default]
    Sim,
    /// Native host execution: same kernel bodies, raw wall-clock speed, no
    /// simulation machinery. The production path.
    Native,
}

impl Backend {
    /// Stable lowercase label (CLI values, metric label values).
    pub fn label(self) -> &'static str {
        match self {
            Backend::Sim => "sim",
            Backend::Native => "native",
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sim" => Ok(Backend::Sim),
            "native" => Ok(Backend::Native),
            other => Err(format!("unknown backend `{other}` (expected `sim` or `native`)")),
        }
    }
}

/// The device surface a *pipeline* (host-side driver) programs against,
/// implemented by both [`Gpu`] and [`NativeGpu`].
///
/// Methods that only make sense on the simulator — modeled seconds, the
/// profiler timeline, spans, fault statistics — have honest degenerate
/// behavior on the native backend (zeros, empties, no-ops) so generic
/// driver code needs no backend branches. Installing an *active* fault
/// plan on a backend that cannot honor it panics instead of silently
/// dropping it; callers route faulted work to [`Backend::Sim`] first.
pub trait ExecBackend {
    /// Construct a fresh backend for a device description. Generic pipeline
    /// attempts use this so each attempt starts from a clean device.
    fn from_spec(spec: DeviceSpec) -> Self
    where
        Self: Sized;

    /// Which backend this is.
    fn kind(&self) -> Backend;

    /// The device description (geometry limits still validate launches on
    /// the native backend).
    fn spec(&self) -> &DeviceSpec;

    /// Set host-side block parallelism for subsequent launches.
    fn set_parallelism(&mut self, parallelism: SimParallelism);

    /// Allocate a zero-initialized global buffer of `len` elements.
    fn alloc<T: DeviceValue>(&mut self, len: usize) -> Buf<T>;

    /// Allocate and fill a constant-memory region (both backends enforce
    /// the device's constant-memory limit identically).
    fn alloc_const<T: DeviceValue>(&mut self, data: &[T]) -> Result<ConstBuf<T>, LaunchError>;

    /// Copy host data into a device buffer.
    fn h2d<T: DeviceValue>(&mut self, buf: Buf<T>, data: &[T]);

    /// Copy a device buffer back to the host.
    fn d2h<T: DeviceValue>(&mut self, buf: Buf<T>) -> Vec<T>;

    /// Copy a sub-range of a device buffer back to the host.
    fn d2h_range<T: DeviceValue>(&mut self, buf: Buf<T>, start: usize, len: usize) -> Vec<T>;

    /// Host-side peek at device memory without a modeled transfer.
    fn peek<T: DeviceValue>(&self, buf: Buf<T>) -> Vec<T>;

    /// Launch a kernel. The simulator additionally records modeled timing
    /// and draws fault decisions; the native backend just runs the blocks.
    fn launch_kernel<K: Kernel + Sync>(
        &mut self,
        kernel: &K,
        cfg: LaunchConfig,
        args: &[ErasedBuf],
    ) -> Result<(), LaunchError>;

    /// Install (or clear, with `None`) a fault-injection plan.
    ///
    /// # Panics
    /// The native backend panics on an *active* plan — fault injection is
    /// sim-only and must be rejected upstream, never silently ignored.
    fn set_fault_plan(&mut self, plan: Option<FaultPlan>);

    /// Counters of injected faults (always zero on the native backend).
    fn fault_stats(&self) -> FaultStats;

    /// Open a named span with key/value metadata on the timeline (no-op on
    /// the native backend).
    fn span_begin_args(&mut self, name: &str, args: Vec<(String, String)>);

    /// Open a named span (no-op on the native backend).
    fn span_begin(&mut self, name: &str) {
        self.span_begin_args(name, Vec::new());
    }

    /// Close the innermost open span with this name (no-op on the native
    /// backend).
    fn span_end(&mut self, name: &str);

    /// Successful kernel launches so far. Identical across backends for a
    /// clean run — part of the parity contract.
    fn kernel_launches(&self) -> usize;

    /// Total modeled device seconds (kernels + transfers); `0.0` on the
    /// native backend, whose currency is wall-clock time.
    fn modeled_total_seconds(&self) -> f64;

    /// Modeled kernel-only seconds; `0.0` on the native backend.
    fn modeled_kernel_seconds(&self) -> f64;

    /// Modeled transfer-only seconds; `0.0` on the native backend.
    fn modeled_transfer_seconds(&self) -> f64;

    /// Human-readable profiler table (empty on the native backend).
    fn profiler_summary(&self) -> String;

    /// The timeline events recorded so far (empty on the native backend).
    fn timeline_events(&self) -> Vec<TimelineEvent>;
}

impl ExecBackend for Gpu {
    fn from_spec(spec: DeviceSpec) -> Self {
        Gpu::new(spec)
    }

    fn kind(&self) -> Backend {
        Backend::Sim
    }

    fn spec(&self) -> &DeviceSpec {
        Gpu::spec(self)
    }

    fn set_parallelism(&mut self, parallelism: SimParallelism) {
        Gpu::set_parallelism(self, parallelism);
    }

    fn alloc<T: DeviceValue>(&mut self, len: usize) -> Buf<T> {
        Gpu::alloc(self, len)
    }

    fn alloc_const<T: DeviceValue>(&mut self, data: &[T]) -> Result<ConstBuf<T>, LaunchError> {
        Gpu::alloc_const(self, data)
    }

    fn h2d<T: DeviceValue>(&mut self, buf: Buf<T>, data: &[T]) {
        Gpu::h2d(self, buf, data);
    }

    fn d2h<T: DeviceValue>(&mut self, buf: Buf<T>) -> Vec<T> {
        Gpu::d2h(self, buf)
    }

    fn d2h_range<T: DeviceValue>(&mut self, buf: Buf<T>, start: usize, len: usize) -> Vec<T> {
        Gpu::d2h_range(self, buf, start, len)
    }

    fn peek<T: DeviceValue>(&self, buf: Buf<T>) -> Vec<T> {
        Gpu::peek(self, buf)
    }

    fn launch_kernel<K: Kernel + Sync>(
        &mut self,
        kernel: &K,
        cfg: LaunchConfig,
        args: &[ErasedBuf],
    ) -> Result<(), LaunchError> {
        Gpu::launch(self, kernel, cfg, args).map(|_| ())
    }

    fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        Gpu::set_fault_plan(self, plan);
    }

    fn fault_stats(&self) -> FaultStats {
        Gpu::fault_stats(self)
    }

    fn span_begin_args(&mut self, name: &str, args: Vec<(String, String)>) {
        Gpu::span_begin_args(self, name, args);
    }

    fn span_end(&mut self, name: &str) {
        Gpu::span_end(self, name);
    }

    fn kernel_launches(&self) -> usize {
        self.profiler().kernel_launches()
    }

    fn modeled_total_seconds(&self) -> f64 {
        self.profiler().total_seconds()
    }

    fn modeled_kernel_seconds(&self) -> f64 {
        self.profiler().kernel_seconds()
    }

    fn modeled_transfer_seconds(&self) -> f64 {
        self.profiler().transfer_seconds()
    }

    fn profiler_summary(&self) -> String {
        self.profiler().summary()
    }

    fn timeline_events(&self) -> Vec<TimelineEvent> {
        self.profiler().events().to_vec()
    }
}

/// The native host backend: one device's worth of memory plus a block
/// dispatch pool, and nothing else. See the module docs for the contract.
#[derive(Debug)]
pub struct NativeGpu {
    spec: DeviceSpec,
    pool: MemoryPool,
    parallelism: SimParallelism,
    workers: Option<WorkerPool>,
    launches: usize,
}

impl NativeGpu {
    /// Bring up a native device. Host-side block parallelism is taken from
    /// [`DeviceSpec::parallelism`], exactly like [`Gpu::new`].
    pub fn new(spec: DeviceSpec) -> Self {
        let parallelism = spec.parallelism;
        NativeGpu { spec, pool: MemoryPool::default(), parallelism, workers: None, launches: 0 }
    }

    fn ensure_workers(&mut self, threads: usize) {
        if self.workers.as_ref().map(|w| w.threads()) != Some(threads) {
            self.workers = Some(WorkerPool::new(threads));
        }
    }
}

/// Execute one block natively: same phase/barrier structure as the
/// simulator's `run_block`, minus costs, fault streams and race tracking.
fn native_run_block<K: Kernel>(
    kernel: &K,
    block_idx: usize,
    block_dim: usize,
    grid_dim: usize,
    phases: usize,
    args: &[ErasedBuf],
    mem: &MemView<'_>,
) -> AtomicStage {
    let mut shared = kernel.make_shared(block_dim);
    let mut states: Vec<K::ThreadState> =
        (0..block_dim).map(|_| K::ThreadState::default()).collect();
    let mut stage = AtomicStage::default();
    for phase in 0..phases {
        for (thread_idx, state) in states.iter_mut().enumerate() {
            let mut ctx =
                NativeCtx { thread_idx, block_idx, block_dim, grid_dim, args, mem, stage: &mut stage };
            kernel.phase(phase, &mut ctx, &mut shared, state);
        }
    }
    stage
}

impl ExecBackend for NativeGpu {
    fn from_spec(spec: DeviceSpec) -> Self {
        NativeGpu::new(spec)
    }

    fn kind(&self) -> Backend {
        Backend::Native
    }

    fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    fn set_parallelism(&mut self, parallelism: SimParallelism) {
        self.parallelism = parallelism;
    }

    fn alloc<T: DeviceValue>(&mut self, len: usize) -> Buf<T> {
        Buf::new(self.pool.alloc(len), len)
    }

    fn alloc_const<T: DeviceValue>(&mut self, data: &[T]) -> Result<ConstBuf<T>, LaunchError> {
        let requested = data.len() * 8;
        let available = self.spec.constant_mem_bytes.saturating_sub(self.pool.constant_bytes);
        if requested > available {
            return Err(LaunchError::ConstantMemoryExceeded { requested, available });
        }
        let words: Vec<u64> = data.iter().map(|v| v.to_bits()).collect();
        let id = self.pool.alloc_const(words);
        Ok(ConstBuf::new(id, data.len()))
    }

    fn h2d<T: DeviceValue>(&mut self, buf: Buf<T>, data: &[T]) {
        assert_eq!(data.len(), buf.len, "h2d length mismatch");
        for (slot, v) in self.pool.global[buf.id].iter_mut().zip(data) {
            *slot = v.to_bits();
        }
    }

    fn d2h<T: DeviceValue>(&mut self, buf: Buf<T>) -> Vec<T> {
        self.pool.global[buf.id].iter().map(|&bits| T::from_bits(bits)).collect()
    }

    fn d2h_range<T: DeviceValue>(&mut self, buf: Buf<T>, start: usize, len: usize) -> Vec<T> {
        assert!(start + len <= buf.len, "d2h_range out of bounds");
        self.pool.global[buf.id][start..start + len]
            .iter()
            .map(|&bits| T::from_bits(bits))
            .collect()
    }

    fn peek<T: DeviceValue>(&self, buf: Buf<T>) -> Vec<T> {
        self.pool.global[buf.id].iter().map(|&bits| T::from_bits(bits)).collect()
    }

    fn launch_kernel<K: Kernel + Sync>(
        &mut self,
        kernel: &K,
        cfg: LaunchConfig,
        args: &[ErasedBuf],
    ) -> Result<(), LaunchError> {
        let block_dim = cfg.block_size();
        let shared_bytes = kernel.shared_mem_bytes(block_dim);
        cfg.validate(&self.spec, shared_bytes).map_err(LaunchError::InvalidConfig)?;

        let grid_dim = cfg.num_blocks();
        let phases = kernel.num_phases().max(1);
        let pool_threads = self.parallelism.resolve().min(grid_dim.max(1));
        if pool_threads > 1 {
            self.ensure_workers(pool_threads);
        }

        // Stages are collected per block and applied in block-index order —
        // the same merge discipline as the simulator, through the same
        // `AtomicStage` type, which is what makes atomics byte-identical
        // across backends and host thread counts.
        let stages: Vec<AtomicStage> = {
            let mem = MemView::new(&mut self.pool);
            if pool_threads > 1 {
                let slots: Vec<Mutex<Option<AtomicStage>>> =
                    (0..grid_dim).map(|_| Mutex::new(None)).collect();
                let mem = &mem;
                self.workers.as_ref().expect("ensured above").run(grid_dim, &|block_idx| {
                    let stage = native_run_block(
                        kernel, block_idx, block_dim, grid_dim, phases, args, mem,
                    );
                    *slots[block_idx].lock().expect("block slot poisoned") = Some(stage);
                });
                slots
                    .into_iter()
                    .map(|s| s.into_inner().expect("slot poisoned").expect("every block ran"))
                    .collect()
            } else {
                (0..grid_dim)
                    .map(|block_idx| {
                        native_run_block(kernel, block_idx, block_dim, grid_dim, phases, args, &mem)
                    })
                    .collect()
            }
        };
        for stage in stages {
            stage.apply(&mut self.pool);
        }
        self.launches += 1;
        Ok(())
    }

    fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        assert!(
            plan.filter(FaultPlan::is_active).is_none(),
            "fault injection is sim-only: route fault-plan work to Backend::Sim"
        );
    }

    fn fault_stats(&self) -> FaultStats {
        FaultStats::default()
    }

    fn span_begin_args(&mut self, _name: &str, _args: Vec<(String, String)>) {}

    fn span_end(&mut self, _name: &str) {}

    fn kernel_launches(&self) -> usize {
        self.launches
    }

    fn modeled_total_seconds(&self) -> f64 {
        0.0
    }

    fn modeled_kernel_seconds(&self) -> f64 {
        0.0
    }

    fn modeled_transfer_seconds(&self) -> f64 {
        0.0
    }

    fn profiler_summary(&self) -> String {
        String::new()
    }

    fn timeline_events(&self) -> Vec<TimelineEvent> {
        Vec::new()
    }
}

/// The native implementation of the device surface: plain bounds-checked
/// relaxed-atomic memory access, staged atomics, and nothing else. The
/// `charge_*` hooks vanish, fault injection is never active, and the
/// telemetry port degenerates to a plain access.
pub struct NativeCtx<'a> {
    thread_idx: usize,
    block_idx: usize,
    block_dim: usize,
    grid_dim: usize,
    args: &'a [ErasedBuf],
    mem: &'a MemView<'a>,
    stage: &'a mut AtomicStage,
}

impl NativeCtx<'_> {
    #[inline]
    fn check_bounds(&self, id: usize, len: usize, idx: usize) {
        assert!(
            idx < len,
            "global memory access out of bounds: buffer {id} has {len} elements, index {idx}"
        );
    }
}

impl DeviceCtx for NativeCtx<'_> {
    #[inline]
    fn thread_idx(&self) -> usize {
        self.thread_idx
    }

    #[inline]
    fn block_idx(&self) -> usize {
        self.block_idx
    }

    #[inline]
    fn block_dim(&self) -> usize {
        self.block_dim
    }

    #[inline]
    fn grid_dim(&self) -> usize {
        self.grid_dim
    }

    fn arg_buf(&self, i: usize) -> ErasedBuf {
        self.args[i]
    }

    #[inline]
    fn fault_injection_active(&self) -> bool {
        false
    }

    #[inline]
    fn read<T: DeviceValue>(&mut self, buf: impl AsBuf<T>, idx: usize) -> T {
        let (id, _) = buf.id_len();
        T::from_bits(self.mem.load(id, idx))
    }

    #[inline]
    fn write<T: DeviceValue>(&mut self, buf: impl AsBuf<T>, idx: usize, value: T) {
        let (id, _) = buf.id_len();
        self.mem.store(id, idx, value.to_bits());
    }

    #[inline]
    fn read_texture<T: DeviceValue>(&mut self, buf: impl AsBuf<T>, idx: usize) -> T {
        let (id, _) = buf.id_len();
        T::from_bits(self.mem.load(id, idx))
    }

    fn read_texture_slice_into<T: DeviceValue>(
        &mut self,
        buf: impl AsBuf<T>,
        start: usize,
        dst: &mut [T],
    ) {
        let (id, _) = buf.id_len();
        let words = self.mem.words_ptr(id, start, dst.len());
        // SAFETY: texture reads are defined only for data no kernel writes
        // during the launch, so no concurrent writer exists.
        let words = unsafe { std::slice::from_raw_parts(words, dst.len()) };
        for (d, &w) in dst.iter_mut().zip(words) {
            *d = T::from_bits(w);
        }
    }

    #[inline]
    fn read_const<T: DeviceValue>(&mut self, cb: ConstBuf<T>, idx: usize) -> T {
        assert!(
            idx < cb.len,
            "constant memory access out of bounds: region {} has {} elements, index {idx}",
            cb.id,
            cb.len
        );
        T::from_bits(self.mem.const_word(cb.id, idx))
    }

    fn atomic_min_i64(&mut self, buf: impl AsBuf<i64>, idx: usize, value: i64) -> i64 {
        let (id, len) = buf.id_len();
        self.check_bounds(id, len, idx);
        self.stage.update(self.mem, id, idx, AtomicOp::Min, value)
    }

    fn atomic_add_i64(&mut self, buf: impl AsBuf<i64>, idx: usize, value: i64) -> i64 {
        let (id, len) = buf.id_len();
        self.check_bounds(id, len, idx);
        self.stage.update(self.mem, id, idx, AtomicOp::Add, value)
    }

    fn read_slice_into<T: DeviceValue>(
        &mut self,
        buf: impl AsBuf<T>,
        start: usize,
        dst: &mut [T],
    ) {
        // One bounds check for the whole window, then a plain vectorizable
        // copy loop — this bulk path is where the native backend earns its
        // wall-clock win over the per-element simulated accesses. See
        // `MemView::words_ptr` for why plain (non-atomic) access is sound
        // here.
        let (id, _) = buf.id_len();
        let words = self.mem.words_ptr(id, start, dst.len());
        // SAFETY: in-bounds (checked by `words_ptr`); simulated threads own
        // disjoint rows, so no concurrent writer overlaps this window.
        let words = unsafe { std::slice::from_raw_parts(words, dst.len()) };
        for (d, &w) in dst.iter_mut().zip(words) {
            *d = T::from_bits(w);
        }
    }

    fn write_slice<T: DeviceValue>(&mut self, buf: impl AsBuf<T>, start: usize, src: &[T]) {
        let (id, _) = buf.id_len();
        let words = self.mem.words_ptr(id, start, src.len());
        // SAFETY: as in `read_slice_into`, plus exclusivity: only this
        // simulated thread writes this row during the launch.
        let words = unsafe { std::slice::from_raw_parts_mut(words, src.len()) };
        for (w, &v) in words.iter_mut().zip(src) {
            *w = v.to_bits();
        }
    }

    fn copy_row<T: DeviceValue>(
        &mut self,
        src: impl AsBuf<T>,
        src_start: usize,
        dst: impl AsBuf<T>,
        dst_start: usize,
        count: usize,
    ) {
        let (sid, _) = src.id_len();
        let (did, _) = dst.id_len();
        let s = self.mem.words_ptr(sid, src_start, count);
        let d = self.mem.words_ptr(did, dst_start, count);
        // SAFETY: both windows are in-bounds (checked by `words_ptr`) and
        // owned by this simulated thread for the duration of the launch;
        // `copy` has memmove semantics, so self-overlap within the thread's
        // own row (the simulator's overlap-aware case) is handled too.
        unsafe { std::ptr::copy(s, d, count) };
    }

    fn cooperative_read<T: DeviceValue>(
        &mut self,
        buf: impl AsBuf<T>,
        start: usize,
        dst: &mut [T],
    ) {
        let (id, _) = buf.id_len();
        let words = self.mem.words_ptr(id, start, dst.len());
        // SAFETY: staged arrays are read-only during the launch.
        let words = unsafe { std::slice::from_raw_parts(words, dst.len()) };
        for (d, &w) in dst.iter_mut().zip(words) {
            *d = T::from_bits(w);
        }
    }

    #[inline]
    fn global_window_i64(&self, buf: impl AsBuf<i64>, start: usize, len: usize) -> Option<&[i64]> {
        let (id, _) = buf.id_len();
        let words = self.mem.words_ptr(id, start, len);
        // SAFETY: in-bounds (checked by `words_ptr`); `i64` and the `u64`
        // word storage share layout and every bit pattern is valid; the
        // contract restricts windows to data no thread writes during the
        // launch, so no concurrent writer exists.
        Some(unsafe { std::slice::from_raw_parts(words as *const i64, len) })
    }

    fn load_rng(&mut self, states: impl AsBuf<u64>, slot: usize) -> XorWow {
        let (id, _) = states.id_len();
        let w = self.mem.words_ptr(id, slot * 3, 3);
        // SAFETY: in-bounds (checked by `words_ptr`); each thread owns its
        // own 3-word RNG slot for the duration of the launch.
        let words = unsafe { [*w, *w.add(1), *w.add(2)] };
        XorWow::unpack(words)
    }

    fn store_rng(&mut self, states: impl AsBuf<u64>, slot: usize, rng: &XorWow) {
        let (id, _) = states.id_len();
        let w = self.mem.words_ptr(id, slot * 3, 3);
        let words = rng.pack();
        // SAFETY: as in `load_rng`.
        unsafe {
            *w = words[0];
            *w.add(1) = words[1];
            *w.add(2) = words[2];
        }
    }

    #[inline]
    fn charge_global(&mut self, _n: u64) {}

    #[inline]
    fn charge_alu(&mut self, _n: u64) {}

    #[inline]
    fn charge_special(&mut self, _n: u64) {}

    #[inline]
    fn charge_shared(&mut self, _n: u64) {}

    #[inline]
    fn charge_bank_conflicts(&mut self, _n: u64) {}

    #[inline]
    fn telemetry_read<T: DeviceValue>(&mut self, buf: impl AsBuf<T>, idx: usize) -> T {
        let (id, _) = buf.id_len();
        T::from_bits(self.mem.load(id, idx))
    }

    #[inline]
    fn telemetry_write<T: DeviceValue>(&mut self, buf: impl AsBuf<T>, idx: usize, value: T) {
        let (id, _) = buf.id_len();
        self.mem.store(id, idx, value.to_bits());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Kernel exercising every value-bearing access path: RNG-driven
    /// arithmetic, slices, copies, constants, textures, both atomics.
    struct Mixer {
        n: usize,
    }

    impl Kernel for Mixer {
        type Shared = ();
        type ThreadState = ();
        fn name(&self) -> &str {
            "mixer"
        }
        fn make_shared(&self, _b: usize) {}
        fn num_phases(&self) -> usize {
            2
        }
        fn phase<C: DeviceCtx>(&self, p: usize, ctx: &mut C, _s: &mut (), _t: &mut ()) {
            let data = ctx.arg_buf(0);
            let rng_states = ctx.arg_buf(1);
            let mins = ctx.arg_buf(2);
            let sums = ctx.arg_buf(3);
            let gid = ctx.global_id();
            if p == 0 {
                let mut rng = ctx.load_rng(rng_states, gid);
                let mut row = vec![0i64; self.n];
                ctx.read_slice_into::<i64>(data, gid * self.n, &mut row);
                for v in row.iter_mut() {
                    *v = v.wrapping_mul(3).wrapping_add(rng.next_below(1000) as i64);
                }
                ctx.write_slice::<i64>(data, gid * self.n, &row);
                ctx.store_rng(rng_states, gid, &rng);
            } else {
                let first: i64 = ctx.read_texture(data, gid * self.n);
                ctx.atomic_min_i64(mins, 0, first);
                ctx.atomic_add_i64(sums, 0, first);
                if gid == 0 && ctx.grid_dim() * ctx.block_dim() >= 2 {
                    // Overlapping same-buffer copy: exercises memmove path.
                    ctx.copy_row::<i64>(data, 0, data, 1, self.n - 1);
                }
            }
        }
    }

    fn drive<B: ExecBackend>(gpu: &mut B, threads: usize) -> (Vec<i64>, Vec<i64>, Vec<i64>) {
        use crate::rng::XorWow;
        gpu.set_parallelism(if threads <= 1 {
            SimParallelism::Serial
        } else {
            SimParallelism::Threads(threads)
        });
        let n = 7;
        let total = 4 * 8;
        let data = gpu.alloc::<i64>(total * n);
        let host: Vec<i64> = (0..(total * n) as i64).map(|v| v.wrapping_mul(17) % 991).collect();
        gpu.h2d(data, &host);
        let rng = gpu.alloc::<u64>(total * 3);
        let words: Vec<u64> =
            (0..total).flat_map(|t| XorWow::new(42, t as u64).pack()).collect();
        gpu.h2d(rng, &words);
        let mins = gpu.alloc::<i64>(1);
        gpu.h2d(mins, &[i64::MAX]);
        let sums = gpu.alloc::<i64>(1);
        for _ in 0..3 {
            gpu.launch_kernel(
                &Mixer { n },
                LaunchConfig::linear(4, 8),
                &[data.erased(), rng.erased(), mins.erased(), sums.erased()],
            )
            .unwrap();
        }
        (gpu.d2h(data), gpu.d2h(mins), gpu.d2h(sums))
    }

    #[test]
    fn native_matches_sim_bit_for_bit() {
        let spec = DeviceSpec::gt560m();
        let mut sim = Gpu::new(spec.clone());
        let baseline = drive(&mut sim, 1);
        for threads in [1usize, 3] {
            let mut native = NativeGpu::new(spec.clone());
            let got = drive(&mut native, threads);
            assert_eq!(got, baseline, "native(threads={threads}) diverged from sim");
        }
        // And the sim's own parallel dispatch still agrees.
        let mut sim_par = Gpu::new(spec);
        assert_eq!(drive(&mut sim_par, 3), baseline);
    }

    #[test]
    fn native_counts_launches_and_reports_zero_modeled_time() {
        let mut native = NativeGpu::new(DeviceSpec::gt560m());
        let _ = drive(&mut native, 1);
        assert_eq!(native.kernel_launches(), 3);
        assert_eq!(native.modeled_total_seconds(), 0.0);
        assert_eq!(native.modeled_kernel_seconds(), 0.0);
        assert_eq!(native.modeled_transfer_seconds(), 0.0);
        assert!(native.profiler_summary().is_empty());
        assert!(native.timeline_events().is_empty());
        assert_eq!(native.kind(), Backend::Native);
        assert_eq!(native.fault_stats(), FaultStats::default());
    }

    #[test]
    fn native_validates_launch_config_like_sim() {
        let spec = DeviceSpec::gt560m();
        let bad = LaunchConfig::linear(1, spec.max_threads_per_block + 1);
        let mut sim = Gpu::new(spec.clone());
        let mut native = NativeGpu::new(spec);
        let a = sim.alloc::<i64>(4);
        let b = ExecBackend::alloc::<i64>(&mut native, 4);
        let e1 = sim.launch(&Mixer { n: 1 }, bad, &[a.erased()]).unwrap_err();
        let e2 = native.launch_kernel(&Mixer { n: 1 }, bad, &[b.erased()]).unwrap_err();
        assert_eq!(e1, e2);
    }

    #[test]
    fn native_enforces_constant_memory_limit() {
        let spec = DeviceSpec::gt560m();
        let words = spec.constant_mem_bytes / 8 + 1;
        let mut native = NativeGpu::new(spec);
        let data = vec![0i64; words];
        let err = native.alloc_const(&data).unwrap_err();
        assert!(matches!(err, LaunchError::ConstantMemoryExceeded { .. }));
    }

    #[test]
    #[should_panic(expected = "fault injection is sim-only")]
    fn native_rejects_active_fault_plan() {
        let mut native = NativeGpu::new(DeviceSpec::gt560m());
        let plan = FaultPlan { launch_failure_rate: 0.5, ..FaultPlan::disabled() };
        native.set_fault_plan(Some(plan));
    }

    #[test]
    fn native_accepts_clearing_or_inert_fault_plan() {
        let mut native = NativeGpu::new(DeviceSpec::gt560m());
        native.set_fault_plan(None);
        native.set_fault_plan(Some(FaultPlan::disabled()));
    }

    #[test]
    fn backend_labels_round_trip() {
        for b in [Backend::Sim, Backend::Native] {
            assert_eq!(b.label().parse::<Backend>().unwrap(), b);
            assert_eq!(b.to_string(), b.label());
        }
        assert!("cuda".parse::<Backend>().is_err());
        assert_eq!(Backend::default(), Backend::Sim);
    }
}
