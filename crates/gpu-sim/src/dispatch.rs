//! Host-side parallel block dispatch: the thread pool that executes the
//! blocks of one launch concurrently.
//!
//! Blocks are the natural unit of host parallelism in the CUDA execution
//! model: barriers (`__syncthreads`) are *intra*-block, blocks share no
//! synchronization, and the paper's SA/DPSO chains are thread-independent.
//! The engine therefore runs each block to completion on one host thread
//! and distributes blocks over a persistent [`WorkerPool`] — persistent,
//! because the pipelines launch thousands of small kernels per run and a
//! per-launch `thread::spawn` would cost more than the kernels themselves.
//!
//! Determinism is a hard contract, not best-effort (DESIGN.md §11): the
//! engine pre-draws per-launch fault decisions indexed by `(block, thread)`,
//! stages atomics per block and merges them in block-index order, and keeps
//! the modeled clock computed from the cost model alone — so results,
//! `sim_*` metrics, fault streams, telemetry rings and Chrome traces are
//! byte-identical at every thread count, including `serial`.
//!
//! How many host threads to use is a [`SimParallelism`] knob on
//! [`crate::DeviceSpec`] (overridable per device via
//! [`crate::Gpu::set_parallelism`], and from the environment through
//! [`SimParallelism::from_env`] / the `--sim-threads` flag of the bench and
//! service binaries).

use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread::JoinHandle;

/// Environment variable read by [`SimParallelism::from_env`].
pub const SIM_THREADS_ENV: &str = "CDD_SIM_THREADS";

/// How many host threads a [`crate::Gpu`] uses to execute the blocks of a
/// launch. Every setting produces byte-identical results, metrics, fault
/// streams and traces — the knob only changes wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimParallelism {
    /// One host thread (the pre-parallel engine behaviour; also what race
    /// detection falls back to).
    #[default]
    Serial,
    /// Exactly `k` host threads (clamped to ≥ 1).
    Threads(usize),
    /// One thread per available host core
    /// (`std::thread::available_parallelism`).
    Auto,
}

impl SimParallelism {
    /// The concrete host thread count this setting resolves to (≥ 1).
    pub fn resolve(self) -> usize {
        match self {
            SimParallelism::Serial => 1,
            SimParallelism::Threads(k) => k.max(1),
            SimParallelism::Auto => {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
            }
        }
    }

    /// Read the `CDD_SIM_THREADS` environment variable (`serial`, `auto`,
    /// or a thread count). `None` when unset or unparsable.
    pub fn from_env() -> Option<Self> {
        std::env::var(SIM_THREADS_ENV).ok().and_then(|s| s.trim().parse().ok())
    }
}

impl std::str::FromStr for SimParallelism {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "serial" => Ok(SimParallelism::Serial),
            "auto" => Ok(SimParallelism::Auto),
            k => k
                .parse::<usize>()
                .map(SimParallelism::Threads)
                .map_err(|_| format!("expected `serial`, `auto` or a thread count, got {s:?}")),
        }
    }
}

impl fmt::Display for SimParallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimParallelism::Serial => write!(f, "serial"),
            SimParallelism::Threads(k) => write!(f, "{k}"),
            SimParallelism::Auto => write!(f, "auto"),
        }
    }
}

type PanicPayload = Box<dyn Any + Send + 'static>;

/// One dispatched launch: a lifetime-erased pointer to the block closure
/// plus the shared block counter. The pointers stay valid because
/// [`WorkerPool::run`] never returns (or unwinds) before every worker has
/// acknowledged the job through `done`.
struct Job {
    task: *const (dyn Fn(usize) + Sync),
    next: *const AtomicUsize,
    total: usize,
    done: mpsc::Sender<Option<PanicPayload>>,
}

// SAFETY: the raw pointers reference stack data of the `run` frame, which
// blocks until every worker has reported back on `done`; the pointees are
// `Sync` (the task) and `AtomicUsize` (the counter).
unsafe impl Send for Job {}

impl Clone for Job {
    fn clone(&self) -> Self {
        Job { task: self.task, next: self.next, total: self.total, done: self.done.clone() }
    }
}

struct Worker {
    tx: Option<mpsc::Sender<Job>>,
    handle: Option<JoinHandle<()>>,
}

/// A persistent pool of block-execution threads owned by one
/// [`crate::Gpu`]. `threads` counts the host thread too: a pool of size `k`
/// spawns `k − 1` workers and the launching thread executes blocks
/// alongside them.
pub(crate) struct WorkerPool {
    workers: Vec<Worker>,
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool").field("threads", &self.threads()).finish()
    }
}

impl WorkerPool {
    /// Build a pool that executes blocks on `threads` host threads
    /// (spawning `threads − 1` workers).
    pub(crate) fn new(threads: usize) -> Self {
        let workers = (1..threads.max(1))
            .map(|i| {
                let (tx, rx) = mpsc::channel::<Job>();
                let handle = std::thread::Builder::new()
                    .name(format!("cuda-sim-block-{i}"))
                    .spawn(move || worker_main(rx))
                    .expect("spawn simulated-GPU block worker");
                Worker { tx: Some(tx), handle: Some(handle) }
            })
            .collect();
        WorkerPool { workers }
    }

    /// Host threads this pool executes blocks on (workers + the caller).
    pub(crate) fn threads(&self) -> usize {
        self.workers.len() + 1
    }

    /// Execute `task(b)` for every `b in 0..total`, distributing blocks
    /// dynamically over the workers and the calling thread. Blocks until
    /// every block has run. If any block panics, the remaining blocks are
    /// drained (not executed) and the first panic payload is re-raised on
    /// the calling thread — after all workers have stopped touching the
    /// job, so the borrow erasure stays sound.
    pub(crate) fn run(&self, total: usize, task: &(dyn Fn(usize) + Sync)) {
        let next = AtomicUsize::new(0);
        let (done_tx, done_rx) = mpsc::channel();
        // SAFETY: erasing the borrow lifetime to 'static is sound because
        // this frame blocks on `done_rx` until every worker has finished
        // with the job, and the host's own use ends before that.
        let task: *const (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<_, &'static (dyn Fn(usize) + Sync)>(task) };
        let job = Job { task, next: &next, total, done: done_tx };
        for w in &self.workers {
            w.tx.as_ref()
                .expect("pool workers hold senders until drop")
                .send(job.clone())
                .expect("simulated-GPU block worker terminated unexpectedly");
        }
        drop(job); // host keeps no `done` sender: recv ends with the workers

        // The host participates as the pool's extra thread.
        // SAFETY: `task` was a live borrow one statement ago and this frame
        // has not returned.
        let mut first_panic = run_job_loop(unsafe { &*task }, &next, total);

        // Wait for *every* worker before returning or unwinding: they hold
        // raw pointers into this frame.
        for _ in 0..self.workers.len() {
            match done_rx.recv() {
                Ok(Some(payload)) if first_panic.is_none() => first_panic = Some(payload),
                Ok(_) => {}
                Err(_) => {
                    if first_panic.is_none() {
                        first_panic =
                            Some(Box::new("simulated-GPU block worker died mid-launch".to_string()));
                    }
                }
            }
        }
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for w in &mut self.workers {
            w.tx = None; // closing the channel ends the worker loop
        }
        for w in &mut self.workers {
            if let Some(handle) = w.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

/// Claim and run blocks until the counter is exhausted. On panic the
/// counter is drained so other threads stop claiming, and the payload is
/// returned for the host to re-raise (preserving the original panic
/// message — e.g. the engine's out-of-bounds diagnostics).
fn run_job_loop(
    task: &(dyn Fn(usize) + Sync),
    next: &AtomicUsize,
    total: usize,
) -> Option<PanicPayload> {
    let result = catch_unwind(AssertUnwindSafe(|| loop {
        let b = next.fetch_add(1, Ordering::Relaxed);
        if b >= total {
            break;
        }
        task(b);
    }));
    match result {
        Ok(()) => None,
        Err(payload) => {
            next.store(total, Ordering::Relaxed);
            Some(payload)
        }
    }
}

fn worker_main(rx: mpsc::Receiver<Job>) {
    while let Ok(job) = rx.recv() {
        // SAFETY: the dispatching `run` frame is blocked on our `done` send;
        // the pointers are live until then.
        let task = unsafe { &*job.task };
        let next = unsafe { &*job.next };
        let report = run_job_loop(task, next, job.total);
        let _ = job.done.send(report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallelism_parses_and_prints() {
        assert_eq!("serial".parse::<SimParallelism>().unwrap(), SimParallelism::Serial);
        assert_eq!("auto".parse::<SimParallelism>().unwrap(), SimParallelism::Auto);
        assert_eq!("4".parse::<SimParallelism>().unwrap(), SimParallelism::Threads(4));
        assert!("four".parse::<SimParallelism>().is_err());
        assert_eq!(SimParallelism::Threads(8).to_string(), "8");
        assert_eq!(SimParallelism::Serial.to_string(), "serial");
        assert_eq!(SimParallelism::Auto.to_string(), "auto");
    }

    #[test]
    fn resolve_is_at_least_one() {
        assert_eq!(SimParallelism::Serial.resolve(), 1);
        assert_eq!(SimParallelism::Threads(0).resolve(), 1);
        assert_eq!(SimParallelism::Threads(6).resolve(), 6);
        assert!(SimParallelism::Auto.resolve() >= 1);
        assert_eq!(SimParallelism::default(), SimParallelism::Serial);
    }

    #[test]
    fn pool_runs_every_block_exactly_once() {
        let pool = WorkerPool::new(4);
        for total in [0usize, 1, 3, 64, 257] {
            let counts: Vec<AtomicU64> = (0..total).map(|_| AtomicU64::new(0)).collect();
            pool.run(total, &|b| {
                counts[b].fetch_add(1, Ordering::Relaxed);
            });
            assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1), "total {total}");
        }
    }

    #[test]
    fn pool_is_reusable_across_jobs() {
        let pool = WorkerPool::new(3);
        let sum = AtomicU64::new(0);
        for _ in 0..50 {
            pool.run(10, &|b| {
                sum.fetch_add(b as u64, Ordering::Relaxed);
            });
        }
        assert_eq!(sum.load(Ordering::Relaxed), 50 * 45);
    }

    #[test]
    fn block_panics_propagate_with_their_message() {
        let pool = WorkerPool::new(4);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(16, &|b| {
                if b == 7 {
                    panic!("block seven exploded");
                }
            });
        }))
        .expect_err("panic must propagate");
        let msg = caught
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| caught.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("block seven exploded"), "got {msg:?}");
        // The pool survives a panicking job.
        let ran = AtomicU64::new(0);
        pool.run(4, &|_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn single_thread_pool_degenerates_to_inline_execution() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let sum = AtomicU64::new(0);
        pool.run(8, &|b| {
            sum.fetch_add(b as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 28);
    }
}
