//! Search-trajectory telemetry: a device-resident sampled ring buffer the
//! algorithm kernels write per-chain convergence samples into.
//!
//! # Design constraints (the zero-overhead contract)
//!
//! The recorder exists to observe a search without perturbing it, so it is
//! built exclusively from *instrumentation-port* primitives that sit outside
//! the simulator's modeled machine:
//!
//! * **Allocation** uses [`crate::engine::Gpu::alloc`], which records no
//!   profiler event (buffers are zero-initialized, like `cudaMalloc` +
//!   `cudaMemset` done before the measurement window opens).
//! * **Kernel-side access** uses [`crate::engine::DeviceCtx::telemetry_read`]
//!   / [`telemetry_write`](crate::engine::DeviceCtx::telemetry_write), which
//!   charge no cost-model work, draw nothing from the fault-injection
//!   streams, and bypass race tracking (rings are indexed by `(slot, chain)`
//!   with one owner chain per cell, so there is nothing to track).
//! * **Draining** uses [`crate::engine::Gpu::peek`], the debugging-path host
//!   read that records no modeled transfer.
//!
//! Consequently a run with telemetry enabled produces byte-identical
//! results, timelines, metrics and fault behaviour to the same run with
//! telemetry disabled — the recorder costs nothing when off and changes
//! nothing (except its own ring contents) when on. The property is enforced
//! by `cdd-gpu`'s `telemetry_determinism` tests and the `convergence-smoke`
//! CI job.
//!
//! # Layout
//!
//! The ring stores [`TELEMETRY_LANES`] signed 64-bit lanes per `(slot,
//! chain)` cell, row-major by slot (`(slot × chains + chain) × LANES +
//! lane`), plus one cumulative per-chain counter (`counters[chain]`,
//! incremented every sampled event, e.g. every accepted SA move). A
//! generation `g` is sampled when `g % stride == 0` and lands in slot
//! `(g / stride) % capacity`, so the ring retains the most recent
//! `capacity` samples; the host keeps the matching sample headers
//! (generation index, temperature) and reassembles chronology at drain
//! time. What each lane means is the writing kernel's contract (the SA
//! acceptance kernel writes best/current/accepted-count; the DPSO
//! personal-best kernel writes pbest/current/diversity).

use crate::backend::ExecBackend;
use crate::engine::DeviceCtx;
use crate::memory::Buf;

/// Lanes (i64 values) stored per `(slot, chain)` sample cell.
pub const TELEMETRY_LANES: usize = 3;

/// Host-side telemetry policy: how often to sample and how much history
/// the device ring retains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TelemetryConfig {
    /// Sample every `stride` generations; `0` disables telemetry entirely
    /// (no ring is allocated, kernels receive no probe).
    pub stride: u64,
    /// Ring capacity in samples; `0` means "size to the run" (one slot per
    /// expected sample, capped at [`TelemetryConfig::MAX_AUTO_CAPACITY`]),
    /// so default-configured runs keep their whole curve.
    pub capacity: usize,
}

impl TelemetryConfig {
    /// Upper bound for auto-sized rings (`capacity == 0`): 64 Ki samples,
    /// far beyond the paper's 5000-generation budgets.
    pub const MAX_AUTO_CAPACITY: usize = 65_536;

    /// A recorder sampling every `stride` generations with an auto-sized
    /// ring.
    #[must_use]
    pub fn every(stride: u64) -> Self {
        TelemetryConfig { stride, capacity: 0 }
    }

    /// Telemetry disabled (the default).
    #[must_use]
    pub fn disabled() -> Self {
        TelemetryConfig::default()
    }

    /// Whether the recorder is on.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.stride > 0
    }

    /// Ring slot for generation `gen`, or `None` when the generation is not
    /// sampled (or telemetry is disabled).
    #[must_use]
    pub fn slot_for(&self, gen: u64, capacity: usize) -> Option<usize> {
        if self.stride == 0 || !gen.is_multiple_of(self.stride) || capacity == 0 {
            return None;
        }
        Some(((gen / self.stride) as usize) % capacity)
    }

    /// Concrete ring capacity for a run of `iterations` generations:
    /// the configured capacity, or (when 0) one slot per expected sample.
    #[must_use]
    pub fn effective_capacity(&self, iterations: u64) -> usize {
        if self.stride == 0 {
            return 0;
        }
        if self.capacity > 0 {
            return self.capacity;
        }
        let samples = (iterations / self.stride)
            .saturating_add(1)
            .min(Self::MAX_AUTO_CAPACITY as u64);
        (samples as usize).max(1)
    }
}

/// Device-resident sample ring: `capacity × chains × LANES` lanes plus
/// `chains` cumulative counters. Handles are plain buffer descriptors and
/// copy freely into kernels.
#[derive(Debug, Clone, Copy)]
pub struct TelemetryRing {
    /// Sample lanes, row-major by slot then chain.
    pub lanes: Buf<i64>,
    /// One cumulative event counter per chain (e.g. accepted moves).
    pub counters: Buf<i64>,
    /// Chains (ensemble size) the ring records.
    pub chains: usize,
    /// Ring capacity in samples.
    pub capacity: usize,
}

impl TelemetryRing {
    /// Allocate a zero-initialized ring on `gpu` (no profiler events — see
    /// the module docs). Generic over the execution backend, although
    /// telemetry-carrying runs are routed to the simulator in practice.
    pub fn alloc<B: ExecBackend>(gpu: &mut B, chains: usize, capacity: usize) -> Self {
        assert!(chains > 0 && capacity > 0, "telemetry ring needs chains and capacity");
        TelemetryRing {
            lanes: gpu.alloc::<i64>(capacity * chains * TELEMETRY_LANES),
            counters: gpu.alloc::<i64>(chains),
            chains,
            capacity,
        }
    }

    /// Linear lane index of `(slot, chain, lane)`.
    #[must_use]
    pub fn lane_index(&self, slot: usize, chain: usize, lane: usize) -> usize {
        debug_assert!(slot < self.capacity && chain < self.chains && lane < TELEMETRY_LANES);
        (slot * self.chains + chain) * TELEMETRY_LANES + lane
    }

    /// Kernel-side: write one full sample cell through the instrumentation
    /// port (uncharged, fault-invisible).
    pub fn write_sample<C: DeviceCtx>(
        &self,
        ctx: &mut C,
        slot: usize,
        chain: usize,
        lanes: [i64; TELEMETRY_LANES],
    ) {
        let base = self.lane_index(slot, chain, 0);
        for (i, v) in lanes.into_iter().enumerate() {
            ctx.telemetry_write(self.lanes, base + i, v);
        }
    }

    /// Kernel-side: add `delta` to the chain's cumulative counter and return
    /// the new value (uncharged, fault-invisible).
    pub fn bump_counter<C: DeviceCtx>(&self, ctx: &mut C, chain: usize, delta: i64) -> i64 {
        let v = ctx.telemetry_read::<i64>(self.counters, chain) + delta;
        ctx.telemetry_write(self.counters, chain, v);
        v
    }

    /// Host-side drain: the raw ring lanes and counters, read without a
    /// modeled transfer. Pair with the host-kept sample headers to decode.
    #[must_use]
    pub fn snapshot<B: ExecBackend>(&self, gpu: &B) -> (Vec<i64>, Vec<i64>) {
        (gpu.peek(self.lanes), gpu.peek(self.counters))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use crate::engine::{Gpu, Kernel};
    use crate::grid::LaunchConfig;

    #[test]
    fn disabled_config_never_samples() {
        let c = TelemetryConfig::disabled();
        assert!(!c.enabled());
        assert_eq!(c.slot_for(0, 8), None);
        assert_eq!(c.effective_capacity(1000), 0);
    }

    #[test]
    fn stride_selects_generations_and_wraps_slots() {
        let c = TelemetryConfig::every(3);
        assert!(c.enabled());
        assert_eq!(c.slot_for(0, 4), Some(0));
        assert_eq!(c.slot_for(1, 4), None);
        assert_eq!(c.slot_for(3, 4), Some(1));
        assert_eq!(c.slot_for(12, 4), Some(0), "slot wraps at capacity");
    }

    #[test]
    fn auto_capacity_covers_the_whole_run() {
        assert_eq!(TelemetryConfig::every(1).effective_capacity(100), 101);
        assert_eq!(TelemetryConfig::every(7).effective_capacity(100), 15);
        let huge = TelemetryConfig::every(1).effective_capacity(u64::MAX);
        assert_eq!(huge, TelemetryConfig::MAX_AUTO_CAPACITY);
        assert_eq!(TelemetryConfig { stride: 2, capacity: 9 }.effective_capacity(100), 9);
    }

    /// A kernel that records through the port must leave cost, profiler and
    /// fault streams untouched.
    struct Probe {
        ring: TelemetryRing,
    }
    impl Kernel for Probe {
        type Shared = ();
        type ThreadState = ();
        fn name(&self) -> &str {
            "probe"
        }
        fn make_shared(&self, _b: usize) {}
        fn phase<C: DeviceCtx>(&self, _p: usize, ctx: &mut C, _s: &mut (), _t: &mut ()) {
            let chain = ctx.global_id();
            if chain < self.ring.chains {
                let c = self.ring.bump_counter(ctx, chain, 1);
                self.ring.write_sample(ctx, 0, chain, [chain as i64, -1, c]);
            }
        }
    }

    #[test]
    fn port_writes_are_invisible_to_cost_profiler_and_faults() {
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        let ring = TelemetryRing::alloc(&mut gpu, 4, 2);
        assert_eq!(gpu.profiler().events().len(), 0, "alloc records no events");
        gpu.set_fault_plan(Some(crate::fault::FaultPlan::with_rates(3, 0.0, 1.0, 0.0)));
        let stats = gpu.launch(&Probe { ring }, LaunchConfig::linear(1, 4), &[]).unwrap();
        assert_eq!(stats.total_cost.global_transactions, 0, "port access is uncharged");
        assert_eq!(stats.total_cost.alu, 0);
        assert_eq!(gpu.fault_stats().bit_flips, 0, "port reads draw no fault decisions");
        let (lanes, counters) = ring.snapshot(&gpu);
        assert_eq!(counters, vec![1, 1, 1, 1]);
        assert_eq!(&lanes[..TELEMETRY_LANES], &[0, -1, 1]);
        assert_eq!(&lanes[ring.lane_index(0, 3, 0)..ring.lane_index(0, 3, 0) + 3], &[3, -1, 1]);
        assert_eq!(gpu.profiler().transfer_seconds(), 0.0, "snapshot is transfer-free");
    }

    #[test]
    fn counters_accumulate_across_launches() {
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        let ring = TelemetryRing::alloc(&mut gpu, 2, 1);
        for _ in 0..5 {
            gpu.launch(&Probe { ring }, LaunchConfig::linear(1, 2), &[]).unwrap();
        }
        let (_, counters) = ring.snapshot(&gpu);
        assert_eq!(counters, vec![5, 5]);
    }
}
