//! Deterministic fault injection for the simulated GPU.
//!
//! The paper's target device (GeForce GT 560M) is a consumer part without
//! ECC on its GDDR5, and long metaheuristic campaigns are exactly the
//! workloads where launch hiccups, soft memory errors and wedged kernels
//! surface. This module lets the simulator *inject* those failures
//! deterministically so the recovery layers above it (retry, CPU-oracle
//! re-validation, CPU fallback, resumable campaign journal) can be tested
//! end to end:
//!
//! * **Transient launch failures** — a launch aborts before any thread runs
//!   ([`crate::LaunchError::TransientFault`]); device memory is untouched,
//!   so a retry is safe.
//! * **Silent bit flips** — a global-memory *read* returns the stored word
//!   with one bit inverted (memory itself stays intact — a transient read
//!   error, the non-ECC GDDR model). Constant memory (broadcast cache),
//!   atomics (L2-serialized) and PCIe transfers (link-level CRC) stay
//!   clean.
//! * **Hung kernels** — the launch executes but its modeled time is
//!   inflated past the watchdog budget
//!   (`watchdog_factor × model_kernel_time`), so the engine reports
//!   [`crate::LaunchError::KernelTimeout`] as a driver watchdog kill would.
//! * **Worker crashes** — the whole device dies at a launch index drawn
//!   once at plan installation ([`crate::LaunchError::DeviceLost`]); every
//!   launch from that index on fails until a fresh plan (a fresh device) is
//!   installed. This is the chaos class the service's supervision layer
//!   recovers from (DESIGN.md §12).
//!
//! All decisions come from private SplitMix64 streams seeded by
//! [`FaultPlan::seed`]. Launch-level decisions (failure, hang) advance one
//! stream once per launch. Read-side bit flips are *pre-drawn per launch,
//! per simulated thread*: when a plan with a non-zero flip rate executes a
//! launch, a per-launch salt is drawn from a second stream, and every
//! simulated thread derives its own flip stream from
//! `(salt, global thread id)`. Host scheduling order therefore cannot
//! perturb any decision — the parallel block dispatcher (DESIGN.md §11)
//! produces the exact same fault sequence at every thread count — and the
//! same plan over the same operation sequence reproduces the exact same
//! faults, which is what makes failure campaigns replayable.

use cdd_metrics::MetricsRegistry;
use std::fmt;

/// SplitMix64 step (the same finalizer the RNG seeding uses elsewhere).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Uniform f64 in `[0, 1)` from a SplitMix64 draw.
#[inline]
fn unit_f64(draw: u64) -> f64 {
    (draw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A seeded, deterministic fault-injection plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the two private decision streams.
    pub seed: u64,
    /// Probability that a launch fails before executing.
    pub launch_failure_rate: f64,
    /// Probability that a single global-memory read returns a word with one
    /// flipped bit.
    pub bit_flip_rate: f64,
    /// Probability that a launch hangs (its modeled time is inflated by
    /// [`hang_slowdown`](Self::hang_slowdown)).
    pub hang_rate: f64,
    /// Watchdog budget as a multiple of the clean modeled kernel time.
    pub watchdog_factor: f64,
    /// Slowdown factor applied to a hung kernel's modeled time. A hang is
    /// killed by the watchdog iff `hang_slowdown > watchdog_factor`.
    pub hang_slowdown: f64,
    /// Probability that the device dies wholesale while this plan is
    /// installed ([`crate::LaunchError::DeviceLost`]). The decision — and
    /// the launch index at which death strikes — is drawn **once, at plan
    /// installation**, from a dedicated stream, so a crash is a property of
    /// the plan seed, not of how many launches happen to have run: a
    /// service that re-derives the same per-request plan reproduces the
    /// same crash no matter which worker executes it.
    pub worker_crash_rate: f64,
    /// Upper bound (exclusive) of the drawn crash launch index. A crash
    /// only fires if the workload actually reaches that launch, so the
    /// horizon should sit well below the launches a typical run performs.
    pub worker_crash_horizon: u64,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a baseline).
    pub fn disabled() -> Self {
        FaultPlan {
            seed: 0,
            launch_failure_rate: 0.0,
            bit_flip_rate: 0.0,
            hang_rate: 0.0,
            watchdog_factor: 8.0,
            hang_slowdown: 1e4,
            worker_crash_rate: 0.0,
            worker_crash_horizon: 128,
        }
    }

    /// A plan with the given rates and default watchdog geometry.
    pub fn with_rates(seed: u64, launch_failure: f64, bit_flip: f64, hang: f64) -> Self {
        FaultPlan {
            seed,
            launch_failure_rate: launch_failure,
            bit_flip_rate: bit_flip,
            hang_rate: hang,
            ..Self::disabled()
        }
    }

    /// The same plan under a different seed (used to decorrelate retries of
    /// a whole device attempt and per-cell campaign plans).
    pub fn reseeded(&self, seed: u64) -> Self {
        FaultPlan { seed, ..self.clone() }
    }

    /// The same plan with a worker-crash class added (death with
    /// probability `rate`, at a launch index drawn in `[0, horizon)`).
    #[must_use]
    pub fn with_worker_crash(mut self, rate: f64, horizon: u64) -> Self {
        self.worker_crash_rate = rate;
        self.worker_crash_horizon = horizon.max(1);
        self
    }

    /// Whether the plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.launch_failure_rate > 0.0
            || self.bit_flip_rate > 0.0
            || self.hang_rate > 0.0
            || self.worker_crash_rate > 0.0
    }
}

/// Counters of what a [`FaultState`] actually injected.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    /// Launches attempted while the plan was installed.
    pub launches_attempted: u64,
    /// Launches aborted with a transient failure.
    pub transient_launch_failures: u64,
    /// Global-memory reads that returned a flipped word.
    pub bit_flips: u64,
    /// Launches killed by the watchdog.
    pub hung_kernels: u64,
    /// Whole-device deaths injected (at most one per installed plan — a
    /// lost device stays lost until a fresh plan is installed).
    pub worker_crashes: u64,
}

impl FaultStats {
    /// Fold the counters into a metrics registry as
    /// `{prefix}_launches_attempted_total`, `{prefix}_transient_launch_failures_total`,
    /// `{prefix}_bit_flips_total` and `{prefix}_hung_kernels_total`, all
    /// carrying `labels`. Zero counts are still registered (an `inc` by 0
    /// creates the series), so the *set* of rendered lines is identical
    /// across runs — a requirement for byte-comparing snapshots.
    pub fn observe_into(
        &self,
        registry: &mut MetricsRegistry,
        prefix: &str,
        labels: &[(&str, &str)],
    ) {
        let name = |suffix: &str| format!("{prefix}_{suffix}");
        registry.inc(&name("launches_attempted_total"), labels, self.launches_attempted);
        registry.inc(
            &name("transient_launch_failures_total"),
            labels,
            self.transient_launch_failures,
        );
        registry.inc(&name("bit_flips_total"), labels, self.bit_flips);
        registry.inc(&name("hung_kernels_total"), labels, self.hung_kernels);
        registry.inc(&name("worker_crashes_total"), labels, self.worker_crashes);
    }
}

impl fmt::Display for FaultStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} launches: {} transient failures, {} watchdog kills, {} bit flips, {} worker crashes",
            self.launches_attempted,
            self.transient_launch_failures,
            self.hung_kernels,
            self.bit_flips,
            self.worker_crashes
        )
    }
}

/// Runtime state of an installed plan: the two decision streams plus the
/// injection counters. Owned by [`crate::Gpu`]; one per device.
#[derive(Debug, Clone)]
pub struct FaultState {
    plan: FaultPlan,
    /// Stream advanced once per launch-level decision (failure, hang).
    launch_stream: u64,
    /// Stream advanced once per *executed* launch (when the flip rate is
    /// non-zero) to draw that launch's read-fault salt. Keeping it separate
    /// means the number of reads a kernel performs cannot perturb
    /// launch-level decisions (and vice versa) — and because each thread's
    /// flips derive from the salt rather than a shared serial stream, the
    /// host-side block schedule cannot perturb them either.
    read_stream: u64,
    /// Launch index at which the device dies, pre-drawn at installation
    /// from a third stream (`None` = this plan never crashes the device).
    crash_at: Option<u64>,
    /// Latched once the crash fires: every subsequent launch on this state
    /// reports the device as lost (a dead device does not come back until a
    /// fresh plan — i.e. a fresh device — is installed).
    lost: bool,
    /// What was injected so far.
    pub stats: FaultStats,
}

/// Per-launch read-fault parameters: the salt every simulated thread mixes
/// with its global id to get its private flip stream. Pre-drawn by
/// [`FaultState::launch_read_faults`] before any block executes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReadFaultCfg {
    pub(crate) salt: u64,
    rate: f64,
}

impl ReadFaultCfg {
    /// A config that never flips. Installed when a plan is active but its
    /// flip rate is zero, so kernels still see
    /// [`crate::ThreadCtx::fault_injection_active`] without any stream
    /// being consumed.
    pub(crate) fn inert() -> Self {
        ReadFaultCfg { salt: 0, rate: 0.0 }
    }
}

/// One simulated thread's private read-fault stream for one launch.
/// Deterministic in `(plan seed, launch index, global thread id, read
/// index)` — independent of which host thread runs the block and of what
/// other blocks do.
#[derive(Debug)]
pub(crate) struct ReadFaultStream {
    state: u64,
    rate: f64,
    /// Flips this thread produced; folded into
    /// [`FaultStats::bit_flips`] when the launch's blocks are merged.
    pub(crate) flips: u64,
}

impl ReadFaultStream {
    /// The flip stream of simulated thread `global_thread` under `cfg`.
    pub(crate) fn for_thread(cfg: ReadFaultCfg, global_thread: u64) -> Self {
        let mut state = cfg.salt ^ global_thread.wrapping_mul(0x9e3779b97f4a7c15);
        splitmix64(&mut state); // decorrelate adjacent thread ids
        ReadFaultStream { state, rate: cfg.rate, flips: 0 }
    }

    /// Per-read decision: pass `bits` through, or flip one bit of it.
    /// `width_bits` bounds the flipped position to the value's meaningful
    /// low bits (a `u32` buffer only has 32 payload bits per word).
    #[inline]
    pub(crate) fn observe_read(&mut self, bits: u64, width_bits: u32) -> u64 {
        if self.rate <= 0.0 {
            return bits;
        }
        let draw = splitmix64(&mut self.state);
        if unit_f64(draw) >= self.rate {
            return bits;
        }
        self.flips += 1;
        // Reuse the draw's untouched low bits to pick the position.
        let bit = (draw % width_bits.max(1) as u64) as u32;
        bits ^ 1u64 << bit
    }
}

impl FaultState {
    /// Install `plan` with fresh streams and zeroed counters.
    pub fn new(plan: FaultPlan) -> Self {
        let mut seed = plan.seed;
        let launch_stream = splitmix64(&mut seed);
        let read_stream = splitmix64(&mut seed);
        // The crash decision consumes a *third* derivation — drawn after
        // the two streams above so plans without a crash class keep their
        // historical launch/read sequences byte-identical.
        let mut crash_stream = splitmix64(&mut seed);
        let crash_at = (plan.worker_crash_rate > 0.0
            && unit_f64(splitmix64(&mut crash_stream)) < plan.worker_crash_rate)
            .then(|| splitmix64(&mut crash_stream) % plan.worker_crash_horizon.max(1));
        FaultState {
            plan,
            launch_stream,
            read_stream,
            crash_at,
            lost: false,
            stats: FaultStats::default(),
        }
    }

    /// The installed plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Pre-launch check: is the device dead (or dying at exactly this
    /// launch index)? Called before any other per-launch decision; a lost
    /// device consumes no streams and counts no attempt, so the launch
    /// sequence up to the crash is unchanged by the crash class.
    pub(crate) fn draw_device_lost(&mut self) -> bool {
        if self.lost {
            return true;
        }
        match self.crash_at {
            Some(at) if self.stats.launches_attempted >= at => {
                self.lost = true;
                self.stats.worker_crashes += 1;
                true
            }
            _ => false,
        }
    }

    /// Per-launch decision: should this launch fail transiently?
    pub(crate) fn draw_launch_failure(&mut self) -> bool {
        self.stats.launches_attempted += 1;
        if self.plan.launch_failure_rate <= 0.0 {
            return false;
        }
        let fail = unit_f64(splitmix64(&mut self.launch_stream)) < self.plan.launch_failure_rate;
        if fail {
            self.stats.transient_launch_failures += 1;
        }
        fail
    }

    /// Per-launch decision: does this launch hang? (Counted as a hung
    /// kernel only when the engine's watchdog actually kills it.)
    pub(crate) fn draw_hang(&mut self) -> bool {
        if self.plan.hang_rate <= 0.0 {
            return false;
        }
        unit_f64(splitmix64(&mut self.launch_stream)) < self.plan.hang_rate
    }

    /// Record a watchdog kill.
    pub(crate) fn record_watchdog_kill(&mut self) {
        self.stats.hung_kernels += 1;
    }

    /// Pre-draw this launch's read-fault salt. Called once per *executed*
    /// launch (after the failure/hang decisions; failed launches perform no
    /// reads and must not advance the stream). `None` when the plan cannot
    /// flip bits — so flip-free plans leave the stream untouched forever
    /// and their launch-failure sequences stay comparable across engines.
    pub(crate) fn launch_read_faults(&mut self) -> Option<ReadFaultCfg> {
        if self.plan.bit_flip_rate <= 0.0 {
            return None;
        }
        let salt = splitmix64(&mut self.read_stream);
        Some(ReadFaultCfg { salt, rate: self.plan.bit_flip_rate })
    }

    /// Fold the flips counted by the per-thread streams of one launch into
    /// the stats (in block-index order, with the rest of the block merge).
    pub(crate) fn absorb_bit_flips(&mut self, flips: u64) {
        self.stats.bit_flips += flips;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_injects_nothing() {
        let mut s = FaultState::new(FaultPlan::disabled());
        for _ in 0..1000u64 {
            assert!(!s.draw_launch_failure());
            assert!(!s.draw_hang());
            assert!(s.launch_read_faults().is_none());
        }
        assert_eq!(s.stats, FaultStats { launches_attempted: 1000, ..Default::default() });
        assert!(!s.plan().is_active());
    }

    #[test]
    fn same_seed_reproduces_identical_fault_sequence() {
        let plan = FaultPlan::with_rates(42, 0.1, 0.05, 0.02);
        let run = |plan: &FaultPlan| {
            let mut s = FaultState::new(plan.clone());
            let mut trace = Vec::new();
            for i in 0..500u64 {
                let failed = s.draw_launch_failure();
                let hang = s.draw_hang();
                let mut words = Vec::new();
                if !failed {
                    // Two simulated threads, a few reads each.
                    if let Some(cfg) = s.launch_read_faults() {
                        let mut total = 0;
                        for gid in 0..2u64 {
                            let mut stream = ReadFaultStream::for_thread(cfg, gid);
                            for r in 0..5u64 {
                                words.push(stream.observe_read(i * 31 + r, 64));
                            }
                            total += stream.flips;
                        }
                        s.absorb_bit_flips(total);
                    }
                }
                trace.push((failed, hang, words));
            }
            (trace, s.stats)
        };
        let (t1, s1) = run(&plan);
        let (t2, s2) = run(&plan);
        assert_eq!(t1, t2);
        assert_eq!(s1, s2);
        assert!(s1.transient_launch_failures > 0, "rate 0.1 over 500 draws must fire");
        assert!(s1.bit_flips > 0);
        // A different seed produces a different sequence.
        let (t3, _) = run(&plan.reseeded(43));
        assert_ne!(t1, t3);
    }

    #[test]
    fn read_faults_do_not_perturb_launch_decisions() {
        let plan = FaultPlan::with_rates(7, 0.2, 0.5, 0.0);
        let mut a = FaultState::new(plan.clone());
        let mut b = FaultState::new(plan);
        let mut fa = Vec::new();
        let mut fb = Vec::new();
        for i in 0..100u64 {
            fa.push(a.draw_launch_failure());
            a.launch_read_faults();
            fb.push(b.draw_launch_failure());
            // b's threads perform plenty of reads; a's perform none. The
            // launch decisions must match regardless.
            if let Some(cfg) = b.launch_read_faults() {
                let mut stream = ReadFaultStream::for_thread(cfg, i);
                for k in 0..17 {
                    stream.observe_read(i * k, 64);
                }
            }
        }
        assert_eq!(fa, fb);
    }

    #[test]
    fn flips_respect_value_width() {
        let mut s = FaultState::new(FaultPlan::with_rates(3, 0.0, 1.0, 0.0));
        let cfg = s.launch_read_faults().expect("rate 1.0 yields a config");
        let mut stream = ReadFaultStream::for_thread(cfg, 0);
        for _ in 0..200 {
            let out = stream.observe_read(0, 32);
            assert!(out != 0, "rate 1.0 must flip");
            assert!(out < 1 << 32, "flip must stay in the 32 payload bits");
        }
        assert_eq!(stream.flips, 200);
        s.absorb_bit_flips(stream.flips);
        assert_eq!(s.stats.bit_flips, 200);
    }

    #[test]
    fn thread_streams_are_schedule_independent_and_decorrelated() {
        let mut s = FaultState::new(FaultPlan::with_rates(11, 0.0, 0.3, 0.0));
        let cfg = s.launch_read_faults().unwrap();
        let words = |gid: u64| {
            let mut stream = ReadFaultStream::for_thread(cfg, gid);
            (0..64u64).map(|r| stream.observe_read(r, 64)).collect::<Vec<_>>()
        };
        // Re-deriving a thread's stream reproduces it exactly, no matter
        // what other threads did in between (no shared state).
        let a0 = words(0);
        let _ = words(5);
        let _ = words(3);
        assert_eq!(a0, words(0));
        // Adjacent thread ids see different flips.
        assert_ne!(words(0), words(1));
        // A launch that flips nothing keeps the salt stream position: the
        // next salt depends only on how many flip-capable launches executed.
        let mut x = FaultState::new(FaultPlan::with_rates(11, 0.0, 0.3, 0.0));
        let mut y = FaultState::new(FaultPlan::with_rates(11, 0.0, 0.3, 0.0));
        let cx = (x.launch_read_faults().unwrap(), x.launch_read_faults().unwrap());
        let _ = ReadFaultStream::for_thread(cx.0, 9).observe_read(1, 64);
        let cy = (y.launch_read_faults().unwrap(), y.launch_read_faults().unwrap());
        assert_eq!(cx.1.salt, cy.1.salt);
    }

    #[test]
    fn observe_into_registers_all_series_even_at_zero() {
        let stats = FaultStats { launches_attempted: 7, bit_flips: 2, ..Default::default() };
        let mut reg = MetricsRegistry::new();
        stats.observe_into(&mut reg, "sim_fault", &[]);
        assert_eq!(reg.counter("sim_fault_launches_attempted_total", &[]), 7);
        assert_eq!(reg.counter("sim_fault_bit_flips_total", &[]), 2);
        // Zero counters still render, so snapshots of clean and faulty runs
        // expose the same line set.
        let text = reg.render_prometheus();
        assert!(text.contains("sim_fault_hung_kernels_total 0"));
        assert!(text.contains("sim_fault_transient_launch_failures_total 0"));
    }

    #[test]
    fn worker_crash_fires_once_at_the_drawn_index_and_latches() {
        // Rate 1.0: the crash is certain and the index is drawn in
        // [0, horizon). Replaying the same plan reproduces the same index.
        let plan = FaultPlan::with_rates(77, 0.0, 0.0, 0.0).with_worker_crash(1.0, 8);
        assert!(plan.is_active(), "a crash-only plan is still active");
        let crash_index = |plan: &FaultPlan| {
            let mut s = FaultState::new(plan.clone());
            let mut at = None;
            for i in 0..32u64 {
                if s.draw_device_lost() {
                    at.get_or_insert(i);
                } else {
                    assert!(!s.draw_launch_failure());
                }
            }
            assert_eq!(s.stats.worker_crashes, 1, "the crash is counted exactly once");
            at.expect("rate 1.0 must crash within the horizon")
        };
        let a = crash_index(&plan);
        assert_eq!(a, crash_index(&plan), "crash index is a pure function of the seed");
        assert!(a < 8, "index bounded by the horizon");
        // Once lost, the device stays lost.
        let mut s = FaultState::new(plan.clone());
        while !s.draw_device_lost() {
            s.draw_launch_failure();
        }
        for _ in 0..10 {
            assert!(s.draw_device_lost());
        }
        assert_eq!(s.stats.worker_crashes, 1);
        // A different seed draws a different fate/index eventually.
        let other = crash_index(&plan.reseeded(78));
        let _ = other; // may coincide for one seed; determinism is what matters
    }

    #[test]
    fn crash_class_does_not_perturb_other_fault_streams() {
        // The crash decision comes from a third derivation, so a plan with
        // the crash class produces the *same* launch-failure/hang/read
        // sequence as the same plan without it, up to the crash point.
        let base = FaultPlan::with_rates(13, 0.3, 0.2, 0.1);
        let crashy = base.clone().with_worker_crash(1.0, 1 << 60); // never reached
        let mut a = FaultState::new(base);
        let mut b = FaultState::new(crashy);
        for _ in 0..200u64 {
            assert!(!b.draw_device_lost(), "horizon far beyond the run");
            assert_eq!(a.draw_launch_failure(), b.draw_launch_failure());
            assert_eq!(a.draw_hang(), b.draw_hang());
            assert_eq!(
                a.launch_read_faults().map(|c| c.salt),
                b.launch_read_faults().map(|c| c.salt)
            );
        }
    }

    #[test]
    fn worker_crash_rate_scales_crash_probability() {
        let mut crashed = 0;
        for seed in 0..400u64 {
            let plan = FaultPlan::disabled().reseeded(seed).with_worker_crash(0.5, 4);
            let mut s = FaultState::new(plan);
            for _ in 0..8 {
                if s.draw_device_lost() {
                    break;
                }
                s.draw_launch_failure();
            }
            crashed += u64::from(s.stats.worker_crashes > 0);
        }
        let frac = crashed as f64 / 400.0;
        assert!((0.4..0.6).contains(&frac), "observed crash fraction {frac}");
    }

    #[test]
    fn rates_scale_counts() {
        let mut s = FaultState::new(FaultPlan::with_rates(9, 0.5, 0.0, 0.0));
        for _ in 0..2000 {
            s.draw_launch_failure();
        }
        let frac = s.stats.transient_launch_failures as f64 / 2000.0;
        assert!((0.4..0.6).contains(&frac), "observed failure fraction {frac}");
    }
}
