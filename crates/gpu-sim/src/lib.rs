//! # cuda-sim
//!
//! A **CUDA execution-model simulator**: the substrate that stands in for
//! the paper's NVIDIA GT 560M + CUDA runtime in this reproduction (no GPU is
//! available — see DESIGN.md §2).
//!
//! The simulator reproduces the *semantics* the paper's algorithms rely on
//! and *models* the timing its evaluation reports:
//!
//! * **Execution semantics (exact):** grid/block/thread hierarchy, linear
//!   launch configurations, per-block shared memory, constant memory with
//!   broadcast reads, `__syncthreads` barriers (kernels are phase-structured:
//!   every thread of a block finishes phase *p* before any enters *p+1*),
//!   global-memory reads/writes with optional data-race detection, atomic
//!   operations, and per-thread XORWOW random streams (the cuRAND default
//!   generator).
//! * **Performance model (analytic):** per-thread cost counters (ALU,
//!   special-function, global transactions, shared accesses, atomics) are
//!   aggregated per warp (lockstep: a warp pays the maximum of its lanes),
//!   then per block and per SM under a roofline rule
//!   (`max(compute, memory)`), with blocks distributed round-robin over the
//!   SMs, plus fixed kernel-launch and PCIe transfer overheads. The model
//!   yields *modeled seconds* with the qualitative behaviour the paper
//!   describes: oversubscribed blocks serialize on SMs, small kernels are
//!   dominated by launch/transfer overhead, and memory-heavy kernels are
//!   bandwidth-bound.
//! * **Fault injection (optional):** a seeded [`FaultPlan`] installed via
//!   [`Gpu::set_fault_plan`] deterministically injects transient launch
//!   failures, read-side bit flips and watchdog-killed hangs (see the
//!   [`fault`] module docs) so resilience layers above the simulator can be
//!   tested end to end.
//!
//! Blocks of a launch are *executed* on a configurable number of host
//! threads ([`SimParallelism`] on the [`DeviceSpec`], default `serial`) —
//! a pure wall-clock knob: results, modeled timing, fault streams, metrics
//! and traces are byte-identical at every thread count (DESIGN.md §11).
//! All *parallel timing* still comes from the model, and `EXPERIMENTS.md`
//! labels every GPU time as modeled.
//!
//! Kernels are written once against the [`DeviceCtx`] trait and run on
//! either execution backend ([`backend::ExecBackend`]): the simulator
//! ([`Gpu`]) or the native host backend ([`backend::NativeGpu`]), which
//! executes the same kernel bodies on host threads with no simulation
//! overhead and byte-identical results (DESIGN.md §16).
//!
//! ```
//! use cuda_sim::{DeviceCtx, DeviceSpec, Gpu, Kernel, LaunchConfig};
//! use cuda_sim::backend::{ExecBackend, NativeGpu};
//!
//! struct AddOne;
//! impl Kernel for AddOne {
//!     type Shared = ();
//!     type ThreadState = ();
//!     fn name(&self) -> &str { "add_one" }
//!     fn make_shared(&self, _block_dim: usize) -> () {}
//!     fn phase<C: DeviceCtx>(&self, _p: usize, ctx: &mut C, _s: &mut (), _t: &mut ()) {
//!         let buf = ctx.arg_buf(0);
//!         let gid = ctx.global_id();
//!         let v: i64 = ctx.read(buf, gid);
//!         ctx.write(buf, gid, v + 1);
//!     }
//! }
//!
//! let mut gpu = Gpu::new(DeviceSpec::gt560m());
//! let buf = gpu.alloc::<i64>(8);
//! gpu.h2d(buf, &[0i64, 1, 2, 3, 4, 5, 6, 7]);
//! gpu.launch(&AddOne, LaunchConfig::linear(2, 4), &[buf.erased()]).unwrap();
//! assert_eq!(gpu.d2h(buf), vec![1i64, 2, 3, 4, 5, 6, 7, 8]);
//!
//! // The same kernel on the native backend, through the backend trait.
//! let mut native = NativeGpu::new(DeviceSpec::gt560m());
//! let nbuf = ExecBackend::alloc::<i64>(&mut native, 8);
//! native.h2d(nbuf, &[0i64, 1, 2, 3, 4, 5, 6, 7]);
//! native.launch_kernel(&AddOne, LaunchConfig::linear(2, 4), &[nbuf.erased()]).unwrap();
//! assert_eq!(native.d2h(nbuf), vec![1i64, 2, 3, 4, 5, 6, 7, 8]);
//! ```

pub mod backend;
pub mod cost;
pub mod device;
pub mod dispatch;
pub mod engine;
pub mod fault;
pub mod grid;
pub mod memory;
pub mod pool;
pub mod profiler;
pub mod reduce;
pub mod rng;
pub mod scratch;
pub mod telemetry;

pub use backend::{Backend, ExecBackend, NativeCtx, NativeGpu};
pub use cost::{CostCounter, KernelTiming};
pub use device::DeviceSpec;
pub use dispatch::{SimParallelism, SIM_THREADS_ENV};
pub use engine::{DeviceCtx, Gpu, Kernel, LaunchError, LaunchStats, ThreadCtx};
pub use fault::{FaultPlan, FaultStats};
pub use grid::{Dim3, LaunchConfig};
pub use memory::{Buf, ConstBuf, ErasedBuf};
pub use pool::{DeviceHandle, DeviceUsage};
pub use profiler::{
    observe_timeline, timeline_trace_events, transfer_dir_label, Profiler, ProfilerAggregate,
    TimelineEvent, TransferDir,
};
pub use rng::XorWow;
pub use scratch::ScratchArena;
pub use telemetry::{TelemetryConfig, TelemetryRing, TELEMETRY_LANES};
