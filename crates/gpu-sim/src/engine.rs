//! Kernel execution engine: launches, barriers, memory access, data-race
//! detection, cost aggregation, parallel block dispatch.
//!
//! Blocks of a launch execute on a configurable number of host threads
//! (see [`crate::dispatch::SimParallelism`]); determinism is a hard
//! contract, maintained by three mechanisms (DESIGN.md §11):
//!
//! * fault decisions are pre-drawn per launch and derived per simulated
//!   thread (`(salt, global id)`), so host scheduling cannot perturb them;
//! * atomics are staged per block and merged in block-index order after
//!   every block has run;
//! * the modeled clock is computed from per-block cost counters that are
//!   also merged in block-index order.
//!
//! Race detection keeps its exact cross-block semantics by falling back to
//! serial in-line execution while enabled.

use crate::cost::{model_kernel_time, CostCounter, KernelTiming};
use crate::device::DeviceSpec;
use crate::dispatch::{SimParallelism, WorkerPool};
use crate::fault::{FaultPlan, FaultState, FaultStats, ReadFaultCfg, ReadFaultStream};
use crate::grid::LaunchConfig;
use crate::memory::{Buf, ConstBuf, DeviceValue, ErasedBuf, MemoryPool};
use crate::profiler::{Profiler, TimelineEvent, TransferDir};
use crate::rng::XorWow;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Why a launch or allocation was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum LaunchError {
    /// The launch configuration violates a device limit.
    InvalidConfig(String),
    /// Two threads made conflicting, unsynchronized accesses to the same
    /// global-memory location (only reported when
    /// [`Gpu::set_race_detection`] is on).
    DataRace(String),
    /// Constant memory is exhausted.
    ConstantMemoryExceeded {
        /// Bytes requested by this allocation.
        requested: usize,
        /// Bytes still available.
        available: usize,
    },
    /// The launch failed before any thread ran (injected by an installed
    /// [`FaultPlan`]). Device memory is untouched; retrying is safe.
    TransientFault(String),
    /// The kernel exceeded the watchdog budget and was killed. Its writes
    /// up to the kill are in an unspecified state: recovery must treat the
    /// launch as failed and never trust its outputs without re-running.
    KernelTimeout {
        /// Kernel name.
        kernel: String,
        /// Modeled seconds the hung launch would have taken.
        modeled_seconds: f64,
        /// Watchdog budget it exceeded (`watchdog_factor ×` the clean
        /// modeled time).
        budget_seconds: f64,
    },
    /// The device died wholesale (injected worker crash,
    /// [`FaultPlan::worker_crash_rate`]): this launch and every subsequent
    /// one on this device fail until a fresh device is established.
    /// Deliberately **not** transient — retrying on the *same* device
    /// cannot succeed; recovery must escalate to whoever owns the device
    /// lifecycle (the service's supervisor, DESIGN.md §12).
    DeviceLost {
        /// Kernel whose launch first observed the dead device.
        kernel: String,
    },
}

impl LaunchError {
    /// Whether retrying the same launch can succeed. Transient faults and
    /// watchdog kills are retryable; configuration errors, data races and
    /// allocation failures are deterministic bugs and are not.
    pub fn is_transient(&self) -> bool {
        matches!(self, LaunchError::TransientFault(_) | LaunchError::KernelTimeout { .. })
    }
}

impl fmt::Display for LaunchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaunchError::InvalidConfig(msg) => write!(f, "invalid launch config: {msg}"),
            LaunchError::DataRace(msg) => write!(f, "data race: {msg}"),
            LaunchError::ConstantMemoryExceeded { requested, available } => {
                write!(f, "constant memory exceeded: requested {requested} B, {available} B free")
            }
            LaunchError::TransientFault(msg) => write!(f, "transient launch failure: {msg}"),
            LaunchError::KernelTimeout { kernel, modeled_seconds, budget_seconds } => write!(
                f,
                "kernel `{kernel}` killed by watchdog: modeled {modeled_seconds:.6} s \
                 exceeds budget {budget_seconds:.6} s"
            ),
            LaunchError::DeviceLost { kernel } => {
                write!(f, "device lost: worker crashed before kernel `{kernel}` (injected)")
            }
        }
    }
}

impl std::error::Error for LaunchError {}

/// A simulated CUDA kernel.
///
/// `__syncthreads()` barriers are expressed structurally: the kernel body is
/// split into [`num_phases`](Kernel::num_phases) phases, and the engine
/// guarantees that every thread of a block completes phase `p` before any
/// thread enters `p + 1` — exactly the barrier semantics the paper relies on
/// in its fitness kernel ("this synchronization ensures that all the write
/// operations on the shared memory are finished before reading them").
pub trait Kernel {
    /// Per-block shared memory (built once per block, mutated by all of the
    /// block's threads).
    type Shared;
    /// Per-thread registers persisting across phases.
    type ThreadState: Default;

    /// Kernel name (profiler label).
    fn name(&self) -> &str;

    /// Construct the block's shared memory.
    fn make_shared(&self, block_dim: usize) -> Self::Shared;

    /// Shared-memory footprint in bytes (validated against the device
    /// limit). Kernels report their true footprint; the default of 0 suits
    /// kernels without shared memory.
    fn shared_mem_bytes(&self, _block_dim: usize) -> usize {
        0
    }

    /// Number of barrier-delimited phases (≥ 1).
    fn num_phases(&self) -> usize {
        1
    }

    /// Execute one phase for one thread.
    ///
    /// Generic over the execution context so the same kernel body runs on
    /// the simulator ([`ThreadCtx`], modeled time / faults / races) and on
    /// the native host backend ([`crate::backend::NativeCtx`], raw speed) —
    /// the backend byte-identity contract of DESIGN.md §16 depends on both
    /// paths executing this exact code.
    fn phase<C: DeviceCtx>(
        &self,
        phase: usize,
        ctx: &mut C,
        shared: &mut Self::Shared,
        state: &mut Self::ThreadState,
    );
}

/// Buffer-handle argument accepted by the typed access methods: either a
/// typed [`Buf<T>`] or an [`ErasedBuf`] kernel argument.
pub trait AsBuf<T> {
    /// `(pool id, element count)`.
    fn id_len(&self) -> (usize, usize);
}

impl<T: DeviceValue> AsBuf<T> for Buf<T> {
    fn id_len(&self) -> (usize, usize) {
        (self.id, self.len)
    }
}

impl<T: DeviceValue> AsBuf<T> for ErasedBuf {
    fn id_len(&self) -> (usize, usize) {
        (self.id, self.len)
    }
}

/// The device-side surface a kernel thread programs against.
///
/// Every access a kernel can make — global/constant/texture memory, staged
/// atomics, cooperative staging, cost self-instrumentation, the telemetry
/// port, RNG state marshalling — goes through this trait, so a kernel body
/// is executable by any backend that implements it:
///
/// * [`ThreadCtx`] — the cuda-sim context: every access is bounds-checked,
///   cost-counted, race-tracked and fault-filtered, feeding the modeled
///   clock and the fault-injection machinery.
/// * [`crate::backend::NativeCtx`] — the native host context: plain
///   bounds-checked memory access with **no** per-access simulation; the
///   `charge_*` hooks are no-ops and fault injection is never active.
///
/// The byte-identity contract between the two (DESIGN.md §16) holds because
/// the value semantics of every method below are identical across
/// implementations; only the instrumentation differs.
pub trait DeviceCtx {
    /// Thread index within the block (`threadIdx.x` for linear blocks).
    fn thread_idx(&self) -> usize;
    /// Block index within the grid (`blockIdx.x`).
    fn block_idx(&self) -> usize;
    /// Threads per block (`blockDim.x`).
    fn block_dim(&self) -> usize;
    /// Blocks per grid (`gridDim.x`).
    fn grid_dim(&self) -> usize;
    /// The `i`-th kernel argument.
    fn arg_buf(&self, i: usize) -> ErasedBuf;

    /// Whether a fault-injection plan is installed for this launch. Kernels
    /// that derive memory indices from *data* (not thread ids) use this to
    /// turn on defensive validation of values read from global memory —
    /// modeling resilient device code — without perturbing the clean path's
    /// cost model. Always `false` on the native backend.
    fn fault_injection_active(&self) -> bool;

    /// Read one element from global memory.
    fn read<T: DeviceValue>(&mut self, buf: impl AsBuf<T>, idx: usize) -> T;
    /// Write one element to global memory.
    fn write<T: DeviceValue>(&mut self, buf: impl AsBuf<T>, idx: usize, value: T);
    /// Read one element through the **texture path** (read-only, spatially
    /// cached). Semantically identical to [`read`](Self::read); must only be
    /// used for data no kernel writes during the launch.
    fn read_texture<T: DeviceValue>(&mut self, buf: impl AsBuf<T>, idx: usize) -> T;
    /// Bulk texture-path read (one [`read_texture`](Self::read_texture) per
    /// element).
    fn read_texture_slice_into<T: DeviceValue>(
        &mut self,
        buf: impl AsBuf<T>,
        start: usize,
        dst: &mut [T],
    );
    /// Read from constant memory (broadcast-cached).
    fn read_const<T: DeviceValue>(&mut self, cb: ConstBuf<T>, idx: usize) -> T;
    /// `atomicMin` on a signed 64-bit global location. Staged per block and
    /// merged in block-index order when the launch completes (see
    /// [`AtomicStage`]): the updated value is visible to *subsequent
    /// launches*, and the returned "previous value" is block-local.
    fn atomic_min_i64(&mut self, buf: impl AsBuf<i64>, idx: usize, value: i64) -> i64;
    /// `atomicAdd` on a signed 64-bit global location. Same staging
    /// semantics as [`atomic_min_i64`](Self::atomic_min_i64).
    fn atomic_add_i64(&mut self, buf: impl AsBuf<i64>, idx: usize, value: i64) -> i64;
    /// Bulk read `dst.len()` consecutive elements starting at `start`.
    fn read_slice_into<T: DeviceValue>(&mut self, buf: impl AsBuf<T>, start: usize, dst: &mut [T]);
    /// Bulk write `src.len()` consecutive elements starting at `start`.
    fn write_slice<T: DeviceValue>(&mut self, buf: impl AsBuf<T>, start: usize, src: &[T]);
    /// Device-to-device row copy (`memcpy` within global memory) with
    /// overlap-aware memmove semantics.
    fn copy_row<T: DeviceValue>(
        &mut self,
        src: impl AsBuf<T>,
        src_start: usize,
        dst: impl AsBuf<T>,
        dst_start: usize,
        count: usize,
    );
    /// Uncharged bulk load used for **cooperative** staging: one thread does
    /// the physical copy while *every* participating thread charges its own
    /// share via [`charge_global`](Self::charge_global)/
    /// [`charge_shared`](Self::charge_shared).
    fn cooperative_read<T: DeviceValue>(
        &mut self,
        buf: impl AsBuf<T>,
        start: usize,
        dst: &mut [T],
    );

    /// Borrow a read-only window of an `i64` global buffer **without
    /// copying**, when the backend can expose one. The default (and the
    /// simulator's) answer is `None`: every simulated access must be
    /// charged, race-tracked and fault-filtered, so callers fall back to
    /// [`read_slice_into`](Self::read_slice_into). The native backend
    /// returns a direct view, letting hot kernels skip staging data they
    /// only read. Like the texture path, the window must only cover data no
    /// thread writes during the launch.
    #[inline]
    fn global_window_i64(&self, _buf: impl AsBuf<i64>, _start: usize, _len: usize) -> Option<&[i64]> {
        None
    }

    /// Charge `n` global-memory transactions (the accounting half of a
    /// cooperative load). No-op outside the simulator.
    fn charge_global(&mut self, n: u64);
    /// Charge `n` warp-wide ALU instructions (self-instrumentation for work
    /// the engine cannot observe). No-op outside the simulator.
    fn charge_alu(&mut self, n: u64);
    /// Charge `n` special-function instructions (`exp`, …). No-op outside
    /// the simulator.
    fn charge_special(&mut self, n: u64);
    /// Charge `n` shared-memory accesses. No-op outside the simulator.
    fn charge_shared(&mut self, n: u64);
    /// Charge `n` shared-memory bank conflicts. No-op outside the simulator.
    fn charge_bank_conflicts(&mut self, n: u64);

    /// Read one element through the **instrumentation port**: no cost-model
    /// charge, no fault-stream draw, no race tracking. Reserved for
    /// telemetry buffers (see [`crate::telemetry`]) that must observe a run
    /// without perturbing its modeled time, fault decision streams, or RNG
    /// draw order.
    fn telemetry_read<T: DeviceValue>(&mut self, buf: impl AsBuf<T>, idx: usize) -> T;
    /// Write one element through the **instrumentation port** (uncharged,
    /// fault-invisible, untracked).
    fn telemetry_write<T: DeviceValue>(&mut self, buf: impl AsBuf<T>, idx: usize, value: T);

    /// Global linear thread id (`blockIdx.x * blockDim.x + threadIdx.x`).
    #[inline]
    fn global_id(&self) -> usize {
        self.block_idx() * self.block_dim() + self.thread_idx()
    }

    /// Total threads in the launch.
    #[inline]
    fn total_threads(&self) -> usize {
        self.grid_dim() * self.block_dim()
    }

    /// Load this thread's XORWOW state from a device-resident state array
    /// (3 words per stream, like a `curandState*` argument).
    fn load_rng(&mut self, states: impl AsBuf<u64>, slot: usize) -> XorWow {
        let (id, len) = states.id_len();
        let e = ErasedBuf { id, len };
        let words = [
            self.read::<u64>(e, slot * 3),
            self.read::<u64>(e, slot * 3 + 1),
            self.read::<u64>(e, slot * 3 + 2),
        ];
        XorWow::unpack(words)
    }

    /// Store this thread's XORWOW state back to the device array.
    fn store_rng(&mut self, states: impl AsBuf<u64>, slot: usize, rng: &XorWow) {
        let (id, len) = states.id_len();
        let e = ErasedBuf { id, len };
        let words = rng.pack();
        self.write::<u64>(e, slot * 3, words[0]);
        self.write::<u64>(e, slot * 3 + 1, words[1]);
        self.write::<u64>(e, slot * 3 + 2, words[2]);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ThreadRef {
    block: u32,
    phase: u32,
    thread: u32,
}

#[derive(Debug, Default)]
struct LocationHistory {
    last_write: Option<ThreadRef>,
    /// A bounded sample of readers since the last write (existence of one
    /// conflicting reader is enough to report a race).
    readers: Vec<ThreadRef>,
}

/// Tracks conflicting accesses within one launch.
///
/// Two accesses to the same location conflict when they come from different
/// threads, at least one is a write, and they are **not** ordered by a
/// barrier — i.e. not in the same block with the earlier access in an
/// earlier phase. (Blocks share no barrier, so cross-block accesses are
/// never ordered.)
#[derive(Debug, Default)]
struct RaceTracker {
    locations: HashMap<(usize, usize), LocationHistory>,
    first_race: Option<String>,
}

impl RaceTracker {
    fn ordered_before(a: ThreadRef, b: ThreadRef) -> bool {
        a.block == b.block && a.phase < b.phase
    }

    fn conflict(a: ThreadRef, b: ThreadRef) -> bool {
        (a.block != b.block || a.thread != b.thread) && !Self::ordered_before(a, b)
    }

    fn on_read(&mut self, buf: usize, idx: usize, who: ThreadRef) {
        if self.first_race.is_some() {
            return;
        }
        let h = self.locations.entry((buf, idx)).or_default();
        if let Some(w) = h.last_write {
            if Self::conflict(w, who) {
                self.first_race = Some(format!(
                    "buffer {buf}[{idx}]: read by (block {}, thread {}, phase {}) races with \
                     write by (block {}, thread {}, phase {})",
                    who.block, who.thread, who.phase, w.block, w.thread, w.phase
                ));
                return;
            }
        }
        if h.readers.len() < 4 && !h.readers.contains(&who) {
            h.readers.push(who);
        }
    }

    fn on_write(&mut self, buf: usize, idx: usize, who: ThreadRef) {
        if self.first_race.is_some() {
            return;
        }
        let h = self.locations.entry((buf, idx)).or_default();
        if let Some(w) = h.last_write {
            if Self::conflict(w, who) {
                self.first_race = Some(format!(
                    "buffer {buf}[{idx}]: write by (block {}, thread {}, phase {}) races with \
                     write by (block {}, thread {}, phase {})",
                    who.block, who.thread, who.phase, w.block, w.thread, w.phase
                ));
                return;
            }
        }
        if let Some(&r) = h.readers.iter().find(|&&r| Self::conflict(r, who)) {
            self.first_race = Some(format!(
                "buffer {buf}[{idx}]: write by (block {}, thread {}, phase {}) races with \
                 read by (block {}, thread {}, phase {})",
                who.block, who.thread, who.phase, r.block, r.thread, r.phase
            ));
            return;
        }
        h.last_write = Some(who);
        h.readers.clear();
    }
}

/// Raw view of one global buffer: base pointer + element count.
#[derive(Clone, Copy)]
struct BufSlice {
    ptr: *mut u64,
    len: usize,
}

/// A launch-scoped view of device memory that many host threads can access
/// at once. Words are loaded/stored through `AtomicU64` with relaxed
/// ordering, so even a kernel with a (simulated) data race is defined
/// behavior on the host — it produces garbage values, never UB. Constant
/// memory is read-only during a launch and needs no atomicity.
pub(crate) struct MemView<'a> {
    global: Vec<BufSlice>,
    constant: &'a [Vec<u64>],
}

// SAFETY: all global-word access goes through atomic loads/stores (see
// `load`/`store`); the constant regions are shared read-only. The pointers
// stay valid for the view's lifetime because `new` takes `&mut MemoryPool`,
// which prevents any reallocation of the underlying vectors while the view
// is alive.
unsafe impl Sync for MemView<'_> {}

impl<'a> MemView<'a> {
    pub(crate) fn new(pool: &'a mut MemoryPool) -> MemView<'a> {
        let MemoryPool { global, constant, .. } = pool;
        let global =
            global.iter_mut().map(|b| BufSlice { ptr: b.as_mut_ptr(), len: b.len() }).collect();
        MemView { global, constant }
    }

    #[inline]
    fn word(&self, buf: usize, idx: usize) -> &AtomicU64 {
        let b = &self.global[buf];
        assert!(idx < b.len, "global memory access out of bounds: buffer {buf} has {} elements, index {idx}", b.len);
        // SAFETY: in-bounds (asserted), aligned (`Vec<u64>` storage), and
        // `u64`/`AtomicU64` share layout; atomicity makes concurrent access
        // defined.
        unsafe { &*(b.ptr.add(idx) as *const AtomicU64) }
    }

    #[inline]
    pub(crate) fn load(&self, buf: usize, idx: usize) -> u64 {
        self.word(buf, idx).load(Ordering::Relaxed)
    }

    #[inline]
    pub(crate) fn store(&self, buf: usize, idx: usize, bits: u64) {
        self.word(buf, idx).store(bits, Ordering::Relaxed)
    }

    /// Raw pointer to a bounds-checked window of global words — the native
    /// backend's vectorizable bulk path (atomic loads cannot auto-vectorize).
    ///
    /// Reading or writing through the pointer while another host thread
    /// touches the same *words* is a data race in the Rust sense. The
    /// native backend only accepts kernels whose cross-backend parity runs
    /// clean under the simulator's race detector (races are a sim-detected,
    /// sim-only concern), and simulated threads own disjoint rows by
    /// construction, so the plain accesses never overlap a concurrent
    /// writer in practice.
    #[inline]
    pub(crate) fn words_ptr(&self, buf: usize, start: usize, len: usize) -> *mut u64 {
        let b = &self.global[buf];
        assert!(
            start.checked_add(len).is_some_and(|end| end <= b.len),
            "global memory slice out of bounds: buffer {buf} has {} elements, range {start}..+{len}",
            b.len
        );
        // SAFETY: in-bounds (asserted) and aligned (`Vec<u64>` storage).
        unsafe { b.ptr.add(start) }
    }

    #[inline]
    pub(crate) fn const_word(&self, region: usize, idx: usize) -> u64 {
        self.constant[region][idx]
    }
}

/// The two atomic ops the engine models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AtomicOp {
    Min,
    Add,
}

#[derive(Debug)]
struct StagedAtomic {
    buf: usize,
    idx: usize,
    op: AtomicOp,
    /// Global value at the block's first touch of this location.
    snapshot: i64,
    /// Block-local accumulated value (min over, or snapshot + deltas).
    value: i64,
}

/// Per-block atomic accumulator. Atomics do not write global memory during
/// block execution; each block accumulates into its own stage and the
/// engine merges the stages **in block-index order** after all blocks have
/// run ([`AtomicStage::apply`]). The ops the engine models (min, add) are
/// associative and commutative, so the merged result equals the serial
/// engine's — and the fixed merge order makes it deterministic by
/// construction. Consequence (same as real CUDA): a launch must not read a
/// location another block updates atomically; its post-launch value is only
/// visible to the *next* launch.
#[derive(Debug, Default)]
pub(crate) struct AtomicStage {
    entries: Vec<StagedAtomic>,
}

impl AtomicStage {
    /// Returns the block-local previous value (the global snapshot on first
    /// touch). Every kernel in this repo discards it; it is *not* the
    /// serial engine's cross-block old value.
    pub(crate) fn update(
        &mut self,
        mem: &MemView<'_>,
        buf: usize,
        idx: usize,
        op: AtomicOp,
        v: i64,
    ) -> i64 {
        if let Some(e) =
            self.entries.iter_mut().find(|e| e.buf == buf && e.idx == idx && e.op == op)
        {
            let old = e.value;
            e.value = match op {
                AtomicOp::Min => e.value.min(v),
                AtomicOp::Add => e.value + v,
            };
            return old;
        }
        let snapshot = i64::from_bits(mem.load(buf, idx));
        let value = match op {
            AtomicOp::Min => snapshot.min(v),
            AtomicOp::Add => snapshot + v,
        };
        self.entries.push(StagedAtomic { buf, idx, op, snapshot, value });
        snapshot
    }

    /// Fold this block's accumulators into global memory (called in
    /// block-index order).
    pub(crate) fn apply(self, pool: &mut MemoryPool) {
        for e in self.entries {
            let cur = i64::from_bits(pool.global[e.buf][e.idx]);
            let merged = match e.op {
                // `value` already includes the snapshot, and min is
                // idempotent: min(cur, value) folds this block's minimum in.
                AtomicOp::Min => cur.min(e.value),
                // Adds fold in this block's *delta* so every block's
                // contribution counts exactly once.
                AtomicOp::Add => cur + (e.value - e.snapshot),
            };
            pool.global[e.buf][e.idx] = merged.to_bits();
        }
    }
}

/// Everything one block's execution produced, merged by the engine in
/// block-index order.
struct BlockOutcome {
    /// Lockstep warp costs (lane-max folded).
    warps: Vec<CostCounter>,
    /// Sum of the block's raw per-thread costs.
    total: CostCounter,
    /// Staged atomic updates.
    atomics: AtomicStage,
    /// Bit flips injected into this block's reads.
    bit_flips: u64,
}

/// Execute one block to completion (all phases, barrier semantics) and
/// return its outcome. Self-contained: writable state is either
/// block-local (shared memory, thread states, costs, atomic stage, fault
/// streams) or reached through the concurrency-safe [`MemView`], so any
/// number of blocks may run on distinct host threads simultaneously.
#[allow(clippy::too_many_arguments)]
fn run_block<K: Kernel>(
    kernel: &K,
    block_idx: usize,
    block_dim: usize,
    grid_dim: usize,
    phases: usize,
    args: &[ErasedBuf],
    mem: &MemView<'_>,
    warp_size: usize,
    read_cfg: Option<ReadFaultCfg>,
    mut race: Option<&mut RaceTracker>,
) -> BlockOutcome {
    let mut shared = kernel.make_shared(block_dim);
    let mut states: Vec<K::ThreadState> =
        (0..block_dim).map(|_| K::ThreadState::default()).collect();
    let mut costs = vec![CostCounter::default(); block_dim];
    let mut stage = AtomicStage::default();
    // Each simulated thread's fault stream is derived from the pre-drawn
    // launch salt and its global id — private state, immune to scheduling.
    let mut fault_streams: Vec<Option<ReadFaultStream>> = (0..block_dim)
        .map(|t| {
            read_cfg
                .map(|cfg| ReadFaultStream::for_thread(cfg, (block_idx * block_dim + t) as u64))
        })
        .collect();
    for phase in 0..phases {
        for thread_idx in 0..block_dim {
            let mut ctx = ThreadCtx {
                thread_idx,
                block_idx,
                block_dim,
                grid_dim,
                phase,
                args,
                mem,
                cost: &mut costs[thread_idx],
                stage: &mut stage,
                race: race.as_deref_mut(),
                fault: fault_streams[thread_idx].as_mut(),
            };
            kernel.phase(phase, &mut ctx, &mut shared, &mut states[thread_idx]);
        }
    }
    // Fold threads into lockstep warps.
    let warps: Vec<CostCounter> = costs
        .chunks(warp_size)
        .map(|lanes| {
            lanes.iter().fold(CostCounter::default(), |acc, c| CostCounter::lane_max(&acc, c))
        })
        .collect();
    let mut total = CostCounter::default();
    for c in &costs {
        total.add(c);
    }
    let bit_flips = fault_streams.iter().flatten().map(|s| s.flips).sum();
    BlockOutcome { warps, total, atomics: stage, bit_flips }
}

/// Per-thread execution context handed to [`Kernel::phase`].
pub struct ThreadCtx<'a> {
    /// Thread index within the block (`threadIdx.x` for linear blocks).
    pub thread_idx: usize,
    /// Block index within the grid (`blockIdx.x`).
    pub block_idx: usize,
    /// Threads per block (`blockDim.x`).
    pub block_dim: usize,
    /// Blocks per grid (`gridDim.x`).
    pub grid_dim: usize,
    phase: usize,
    args: &'a [ErasedBuf],
    mem: &'a MemView<'a>,
    /// This thread's cost counters (kernels may charge extra work through
    /// the `charge_*` helpers).
    pub cost: &'a mut CostCounter,
    stage: &'a mut AtomicStage,
    race: Option<&'a mut RaceTracker>,
    fault: Option<&'a mut ReadFaultStream>,
}

impl ThreadCtx<'_> {
    fn who(&self) -> ThreadRef {
        ThreadRef {
            block: self.block_idx as u32,
            phase: self.phase as u32,
            thread: self.thread_idx as u32,
        }
    }

    #[inline]
    fn check_bounds(&self, id: usize, len: usize, idx: usize) {
        assert!(
            idx < len,
            "global memory access out of bounds: buffer {id} has {len} elements, index {idx}"
        );
    }

    /// Pass a loaded word through the fault layer (possibly flipping a bit
    /// of its low `width_bits`).
    #[inline]
    fn observe_read_bits(&mut self, bits: u64, width_bits: u32) -> u64 {
        match self.fault.as_deref_mut() {
            Some(f) => f.observe_read(bits, width_bits),
            None => bits,
        }
    }
}

/// The simulator implementation of the device surface: every access is
/// cost-counted toward the modeled clock, tracked by the (optional) race
/// detector, and filtered through the (optional) per-thread fault stream.
impl DeviceCtx for ThreadCtx<'_> {
    #[inline]
    fn thread_idx(&self) -> usize {
        self.thread_idx
    }

    #[inline]
    fn block_idx(&self) -> usize {
        self.block_idx
    }

    #[inline]
    fn block_dim(&self) -> usize {
        self.block_dim
    }

    #[inline]
    fn grid_dim(&self) -> usize {
        self.grid_dim
    }

    fn arg_buf(&self, i: usize) -> ErasedBuf {
        self.args[i]
    }

    #[inline]
    fn fault_injection_active(&self) -> bool {
        self.fault.is_some()
    }

    /// Read one element from global memory (counts one transaction).
    #[inline]
    fn read<T: DeviceValue>(&mut self, buf: impl AsBuf<T>, idx: usize) -> T {
        let (id, len) = buf.id_len();
        self.check_bounds(id, len, idx);
        self.cost.global_transactions += 1;
        self.cost.alu += 1;
        let who = self.who();
        if let Some(race) = self.race.as_deref_mut() {
            race.on_read(id, idx, who);
        }
        let bits = self.mem.load(id, idx);
        let bits = self.observe_read_bits(bits, 8 * std::mem::size_of::<T>() as u32);
        T::from_bits(bits)
    }

    /// Write one element to global memory (counts one transaction).
    #[inline]
    fn write<T: DeviceValue>(&mut self, buf: impl AsBuf<T>, idx: usize, value: T) {
        let (id, len) = buf.id_len();
        self.check_bounds(id, len, idx);
        self.cost.global_transactions += 1;
        self.cost.alu += 1;
        let who = self.who();
        if let Some(race) = self.race.as_deref_mut() {
            race.on_write(id, idx, who);
        }
        self.mem.store(id, idx, value.to_bits());
    }

    /// Read one element through the **texture path** (read-only, spatially
    /// cached — the paper's conclusion proposes this for future work). The
    /// memory model amortizes
    /// [`crate::cost::TEXTURE_READS_PER_TRANSACTION`] texture reads per
    /// global transaction. Semantically identical to [`read`](Self::read);
    /// must only be used for data no kernel writes during the launch (race
    /// detection still checks this).
    #[inline]
    fn read_texture<T: DeviceValue>(&mut self, buf: impl AsBuf<T>, idx: usize) -> T {
        let (id, len) = buf.id_len();
        self.check_bounds(id, len, idx);
        self.cost.texture_reads += 1;
        self.cost.alu += 1;
        let who = self.who();
        if let Some(race) = self.race.as_deref_mut() {
            race.on_read(id, idx, who);
        }
        let bits = self.mem.load(id, idx);
        let bits = self.observe_read_bits(bits, 8 * std::mem::size_of::<T>() as u32);
        T::from_bits(bits)
    }

    /// Bulk texture-path read (one [`read_texture`](Self::read_texture) per
    /// element).
    fn read_texture_slice_into<T: DeviceValue>(
        &mut self,
        buf: impl AsBuf<T>,
        start: usize,
        dst: &mut [T],
    ) {
        let (id, len) = buf.id_len();
        assert!(
            start + dst.len() <= len,
            "texture slice out of bounds: buffer {id} has {len} elements"
        );
        self.cost.texture_reads += dst.len() as u64;
        self.cost.alu += dst.len() as u64;
        if self.race.is_some() {
            let who = self.who();
            let race = self.race.as_deref_mut().expect("checked above");
            for i in 0..dst.len() {
                race.on_read(id, start + i, who);
            }
        }
        let width = 8 * std::mem::size_of::<T>() as u32;
        match self.fault.as_deref_mut() {
            Some(f) => {
                for (i, d) in dst.iter_mut().enumerate() {
                    *d = T::from_bits(f.observe_read(self.mem.load(id, start + i), width));
                }
            }
            None => {
                for (i, d) in dst.iter_mut().enumerate() {
                    *d = T::from_bits(self.mem.load(id, start + i));
                }
            }
        }
    }

    /// Read from constant memory (broadcast-cached: ALU cost only).
    #[inline]
    fn read_const<T: DeviceValue>(&mut self, cb: ConstBuf<T>, idx: usize) -> T {
        assert!(
            idx < cb.len,
            "constant memory access out of bounds: region {} has {} elements, index {idx}",
            cb.id,
            cb.len
        );
        self.cost.alu += 1;
        T::from_bits(self.mem.const_word(cb.id, idx))
    }

    /// `atomicMin` on a signed 64-bit global location. Atomics never race
    /// (they serialize at L2) but pay [`DeviceSpec::cpi_atomic`]. Staged
    /// per block and merged in block-index order when the launch completes
    /// (see [`AtomicStage`]): the updated value is visible to *subsequent
    /// launches*, and the returned "previous value" is block-local.
    fn atomic_min_i64(&mut self, buf: impl AsBuf<i64>, idx: usize, value: i64) -> i64 {
        let (id, len) = buf.id_len();
        self.check_bounds(id, len, idx);
        self.cost.atomics += 1;
        self.stage.update(self.mem, id, idx, AtomicOp::Min, value)
    }

    /// `atomicAdd` on a signed 64-bit global location. Same staging
    /// semantics as [`atomic_min_i64`](Self::atomic_min_i64).
    fn atomic_add_i64(&mut self, buf: impl AsBuf<i64>, idx: usize, value: i64) -> i64 {
        let (id, len) = buf.id_len();
        self.check_bounds(id, len, idx);
        self.cost.atomics += 1;
        self.stage.update(self.mem, id, idx, AtomicOp::Add, value)
    }

    /// Bulk read `dst.len()` consecutive elements starting at `start`
    /// (charges one transaction per element, like the per-element
    /// [`read`](Self::read) — per-thread rows are strided across threads, so
    /// accesses do not coalesce; see the crate docs).
    fn read_slice_into<T: DeviceValue>(
        &mut self,
        buf: impl AsBuf<T>,
        start: usize,
        dst: &mut [T],
    ) {
        let (id, len) = buf.id_len();
        assert!(
            start + dst.len() <= len,
            "global memory slice out of bounds: buffer {id} has {len} elements, \
             range {start}..{}",
            start + dst.len()
        );
        self.cost.global_transactions += dst.len() as u64;
        self.cost.alu += dst.len() as u64;
        if self.race.is_some() {
            let who = self.who();
            let race = self.race.as_deref_mut().expect("checked above");
            for i in 0..dst.len() {
                race.on_read(id, start + i, who);
            }
        }
        let width = 8 * std::mem::size_of::<T>() as u32;
        match self.fault.as_deref_mut() {
            Some(f) => {
                for (i, d) in dst.iter_mut().enumerate() {
                    *d = T::from_bits(f.observe_read(self.mem.load(id, start + i), width));
                }
            }
            None => {
                for (i, d) in dst.iter_mut().enumerate() {
                    *d = T::from_bits(self.mem.load(id, start + i));
                }
            }
        }
    }

    /// Bulk write `src.len()` consecutive elements starting at `start`
    /// (charges one transaction per element).
    fn write_slice<T: DeviceValue>(&mut self, buf: impl AsBuf<T>, start: usize, src: &[T]) {
        let (id, len) = buf.id_len();
        assert!(
            start + src.len() <= len,
            "global memory slice out of bounds: buffer {id} has {len} elements, \
             range {start}..{}",
            start + src.len()
        );
        self.cost.global_transactions += src.len() as u64;
        self.cost.alu += src.len() as u64;
        if self.race.is_some() {
            let who = self.who();
            let race = self.race.as_deref_mut().expect("checked above");
            for i in 0..src.len() {
                race.on_write(id, start + i, who);
            }
        }
        for (i, &v) in src.iter().enumerate() {
            self.mem.store(id, start + i, v.to_bits());
        }
    }

    /// Device-to-device row copy (`memcpy` within global memory); charges a
    /// read and a write transaction per element.
    fn copy_row<T: DeviceValue>(
        &mut self,
        src: impl AsBuf<T>,
        src_start: usize,
        dst: impl AsBuf<T>,
        dst_start: usize,
        count: usize,
    ) {
        let (sid, slen) = src.id_len();
        let (did, dlen) = dst.id_len();
        assert!(src_start + count <= slen, "copy_row source range out of bounds");
        assert!(dst_start + count <= dlen, "copy_row destination range out of bounds");
        self.cost.global_transactions += 2 * count as u64;
        self.cost.alu += count as u64;
        if self.race.is_some() {
            let who = self.who();
            let race = self.race.as_deref_mut().expect("checked above");
            for i in 0..count {
                race.on_read(sid, src_start + i, who);
                race.on_write(did, dst_start + i, who);
            }
        }
        // Overlap-aware element loop (memmove semantics without a staging
        // allocation): same buffer with the destination ahead of the source
        // must copy back-to-front.
        if sid == did && dst_start > src_start {
            for i in (0..count).rev() {
                self.mem.store(did, dst_start + i, self.mem.load(sid, src_start + i));
            }
        } else {
            for i in 0..count {
                self.mem.store(did, dst_start + i, self.mem.load(sid, src_start + i));
            }
        }
    }

    /// Uncharged bulk load used for **cooperative** staging: one thread does
    /// the physical copy while *every* participating thread charges its own
    /// share via [`charge_global`](Self::charge_global)/
    /// [`charge_shared`](Self::charge_shared). Race detection still sees the
    /// reads.
    fn cooperative_read<T: DeviceValue>(
        &mut self,
        buf: impl AsBuf<T>,
        start: usize,
        dst: &mut [T],
    ) {
        let (id, len) = buf.id_len();
        assert!(
            start + dst.len() <= len,
            "cooperative read out of bounds: buffer {id} has {len} elements"
        );
        if self.race.is_some() {
            let who = self.who();
            let race = self.race.as_deref_mut().expect("checked above");
            for i in 0..dst.len() {
                race.on_read(id, start + i, who);
            }
        }
        let width = 8 * std::mem::size_of::<T>() as u32;
        match self.fault.as_deref_mut() {
            Some(f) => {
                for (i, d) in dst.iter_mut().enumerate() {
                    *d = T::from_bits(f.observe_read(self.mem.load(id, start + i), width));
                }
            }
            None => {
                for (i, d) in dst.iter_mut().enumerate() {
                    *d = T::from_bits(self.mem.load(id, start + i));
                }
            }
        }
    }

    /// Charge `n` global-memory transactions (the accounting half of a
    /// cooperative load).
    #[inline]
    fn charge_global(&mut self, n: u64) {
        self.cost.global_transactions += n;
    }

    /// Charge `n` warp-wide ALU instructions (self-instrumentation for work
    /// the engine cannot observe, e.g. register arithmetic in a loop).
    #[inline]
    fn charge_alu(&mut self, n: u64) {
        self.cost.alu += n;
    }

    /// Charge `n` special-function instructions (`exp`, …).
    #[inline]
    fn charge_special(&mut self, n: u64) {
        self.cost.special += n;
    }

    /// Charge `n` shared-memory accesses.
    #[inline]
    fn charge_shared(&mut self, n: u64) {
        self.cost.shared_accesses += n;
    }

    /// Charge `n` shared-memory bank conflicts.
    #[inline]
    fn charge_bank_conflicts(&mut self, n: u64) {
        self.cost.bank_conflicts += n;
    }

    /// Read one element through the **instrumentation port**: no cost-model
    /// charge, no fault-stream draw, no race tracking. Reserved for
    /// telemetry buffers (see [`crate::telemetry`]) that must observe a run
    /// without perturbing its modeled time, fault decision streams, or RNG
    /// draw order. Never use this for algorithm state: it models an
    /// out-of-band debug channel, not device memory traffic.
    #[inline]
    fn telemetry_read<T: DeviceValue>(&mut self, buf: impl AsBuf<T>, idx: usize) -> T {
        let (id, len) = buf.id_len();
        self.check_bounds(id, len, idx);
        T::from_bits(self.mem.load(id, idx))
    }

    /// Write one element through the **instrumentation port** (uncharged,
    /// fault-invisible, untracked — see
    /// [`telemetry_read`](Self::telemetry_read)).
    #[inline]
    fn telemetry_write<T: DeviceValue>(&mut self, buf: impl AsBuf<T>, idx: usize, value: T) {
        let (id, len) = buf.id_len();
        self.check_bounds(id, len, idx);
        self.mem.store(id, idx, value.to_bits());
    }

}

/// Outcome of a successful launch.
#[derive(Debug, Clone)]
pub struct LaunchStats {
    /// Modeled timing of the launch.
    pub timing: KernelTiming,
    /// Device-wide summed cost counters.
    pub total_cost: CostCounter,
    /// Threads executed.
    pub threads: usize,
}

/// One simulated GPU: device spec, memory, profiler, block-dispatch pool.
#[derive(Debug)]
pub struct Gpu {
    spec: DeviceSpec,
    pool: MemoryPool,
    profiler: Profiler,
    race_detection: bool,
    fault: Option<FaultState>,
    parallelism: SimParallelism,
    /// Lazily built block-execution pool (rebuilt when the resolved thread
    /// count changes).
    workers: Option<WorkerPool>,
}

impl Gpu {
    /// Bring up a device. Host-side block parallelism is taken from
    /// [`DeviceSpec::parallelism`] (override with
    /// [`set_parallelism`](Self::set_parallelism)).
    pub fn new(spec: DeviceSpec) -> Self {
        let parallelism = spec.parallelism;
        Gpu {
            spec,
            pool: MemoryPool::default(),
            profiler: Profiler::new(),
            race_detection: false,
            fault: None,
            parallelism,
            workers: None,
        }
    }

    /// The device description.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Set the host-side block parallelism for subsequent launches. A pure
    /// wall-clock knob: results, modeled timing, fault streams, metrics and
    /// traces are byte-identical at every setting.
    pub fn set_parallelism(&mut self, parallelism: SimParallelism) {
        self.parallelism = parallelism;
    }

    /// The configured host-side block parallelism.
    pub fn parallelism(&self) -> SimParallelism {
        self.parallelism
    }

    fn ensure_workers(&mut self, threads: usize) {
        if self.workers.as_ref().map(|w| w.threads()) != Some(threads) {
            self.workers = Some(WorkerPool::new(threads));
        }
    }

    /// Enable/disable data-race detection for subsequent launches.
    /// Detection is exact for the access patterns it tracks but costs memory
    /// proportional to the touched locations — intended for tests and small
    /// launches.
    pub fn set_race_detection(&mut self, on: bool) {
        self.race_detection = on;
    }

    /// Install (or remove, with `None`) a fault-injection plan for
    /// subsequent launches. Installing a plan resets its decision streams
    /// and counters; a plan whose rates are all zero is treated as absent.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan.filter(FaultPlan::is_active).map(FaultState::new);
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref().map(FaultState::plan)
    }

    /// Counters of the faults injected so far (zeroes when no plan is
    /// installed).
    pub fn fault_stats(&self) -> FaultStats {
        self.fault.as_ref().map(|f| f.stats).unwrap_or_default()
    }

    /// Allocate a zero-initialized global buffer of `len` elements.
    pub fn alloc<T: DeviceValue>(&mut self, len: usize) -> Buf<T> {
        Buf::new(self.pool.alloc(len), len)
    }

    /// Copy host data into a device buffer (`cudaMemcpyHostToDevice`),
    /// recording the modeled transfer time.
    ///
    /// # Panics
    /// Panics if `data.len() != buf.len()`.
    pub fn h2d<T: DeviceValue>(&mut self, buf: Buf<T>, data: &[T]) {
        assert_eq!(data.len(), buf.len, "h2d length mismatch");
        for (slot, v) in self.pool.global[buf.id].iter_mut().zip(data) {
            *slot = v.to_bits();
        }
        let bytes = std::mem::size_of_val(data);
        self.profiler.push(TimelineEvent::Transfer {
            dir: TransferDir::HostToDevice,
            bytes,
            seconds: self.spec.transfer_time(bytes),
        });
    }

    /// Copy a device buffer back to the host (`cudaMemcpyDeviceToHost`),
    /// recording the modeled transfer time.
    pub fn d2h<T: DeviceValue>(&mut self, buf: Buf<T>) -> Vec<T> {
        let out: Vec<T> =
            self.pool.global[buf.id].iter().map(|&bits| T::from_bits(bits)).collect();
        let bytes = out.len() * std::mem::size_of::<T>();
        self.profiler.push(TimelineEvent::Transfer {
            dir: TransferDir::DeviceToHost,
            bytes,
            seconds: self.spec.transfer_time(bytes),
        });
        out
    }

    /// Copy a sub-range of a device buffer back to the host, recording the
    /// modeled transfer time for exactly those bytes (e.g. fetching only the
    /// winning thread's sequence row after the final reduction).
    pub fn d2h_range<T: DeviceValue>(&mut self, buf: Buf<T>, start: usize, len: usize) -> Vec<T> {
        assert!(start + len <= buf.len, "d2h_range out of bounds");
        let out: Vec<T> = self.pool.global[buf.id][start..start + len]
            .iter()
            .map(|&bits| T::from_bits(bits))
            .collect();
        let bytes = len * std::mem::size_of::<T>();
        self.profiler.push(TimelineEvent::Transfer {
            dir: TransferDir::DeviceToHost,
            bytes,
            seconds: self.spec.transfer_time(bytes),
        });
        out
    }

    /// Host-side peek at device memory **without** a modeled transfer (a
    /// debugging aid; real experiments must use [`d2h`](Self::d2h) so the
    /// timing includes the copy, as the paper's speed-ups do).
    pub fn peek<T: DeviceValue>(&self, buf: Buf<T>) -> Vec<T> {
        self.pool.global[buf.id].iter().map(|&bits| T::from_bits(bits)).collect()
    }

    /// Allocate and fill a constant-memory region.
    pub fn alloc_const<T: DeviceValue>(&mut self, data: &[T]) -> Result<ConstBuf<T>, LaunchError> {
        let requested = data.len() * 8;
        let available = self.spec.constant_mem_bytes.saturating_sub(self.pool.constant_bytes);
        if requested > available {
            return Err(LaunchError::ConstantMemoryExceeded { requested, available });
        }
        let words: Vec<u64> = data.iter().map(|v| v.to_bits()).collect();
        let id = self.pool.alloc_const(words);
        let bytes = std::mem::size_of_val(data);
        self.profiler.push(TimelineEvent::Transfer {
            dir: TransferDir::HostToDevice,
            bytes,
            seconds: self.spec.transfer_time(bytes),
        });
        Ok(ConstBuf::new(id, data.len()))
    }

    /// Launch a kernel.
    ///
    /// Blocks execute on the configured number of host threads (see
    /// [`SimParallelism`]; race detection forces serial in-line execution
    /// to keep its exact cross-block semantics); barrier semantics are
    /// exact (phase-structured); timing is produced by the analytic model
    /// in [`crate::cost`] and recorded in the profiler — identically at
    /// every thread count.
    pub fn launch<K: Kernel + Sync>(
        &mut self,
        kernel: &K,
        cfg: LaunchConfig,
        args: &[ErasedBuf],
    ) -> Result<LaunchStats, LaunchError> {
        let block_dim = cfg.block_size();
        let shared_bytes = kernel.shared_mem_bytes(block_dim);
        cfg.validate(&self.spec, shared_bytes).map_err(LaunchError::InvalidConfig)?;

        // Fault injection, launch-level decisions — all pre-drawn before
        // any block runs, so block scheduling cannot perturb the streams. A
        // transient failure aborts before any thread runs (memory
        // untouched, retry safe, read-fault stream not consumed); a hang
        // lets the launch execute and is handled by the watchdog after
        // timing (below).
        let mut hang = false;
        let mut read_cfg = None;
        if let Some(f) = self.fault.as_mut() {
            // A dead device fails every launch before any stream advances:
            // the crash leaves the pre-crash fault sequence untouched.
            if f.draw_device_lost() {
                return Err(LaunchError::DeviceLost { kernel: kernel.name().to_string() });
            }
            if f.draw_launch_failure() {
                return Err(LaunchError::TransientFault(format!(
                    "kernel `{}` failed to launch (injected)",
                    kernel.name()
                )));
            }
            hang = f.draw_hang();
            // `inert` keeps `fault_injection_active()` observable by
            // kernels even when the plan cannot flip bits.
            read_cfg = Some(f.launch_read_faults().unwrap_or_else(ReadFaultCfg::inert));
        }

        let grid_dim = cfg.num_blocks();
        let phases = kernel.num_phases().max(1);
        let warp_size = self.spec.warp_size;
        let pool_threads = self.parallelism.resolve().min(grid_dim.max(1));
        let dispatch_parallel = pool_threads > 1 && !self.race_detection;
        if dispatch_parallel {
            self.ensure_workers(pool_threads);
        }

        let mut race = self.race_detection.then(RaceTracker::default);
        let outcomes: Vec<BlockOutcome> = {
            let mem = MemView::new(&mut self.pool);
            if dispatch_parallel {
                let slots: Vec<Mutex<Option<BlockOutcome>>> =
                    (0..grid_dim).map(|_| Mutex::new(None)).collect();
                let mem = &mem;
                self.workers.as_ref().expect("ensured above").run(grid_dim, &|block_idx| {
                    let outcome = run_block(
                        kernel, block_idx, block_dim, grid_dim, phases, args, mem, warp_size,
                        read_cfg, None,
                    );
                    *slots[block_idx].lock().expect("block slot poisoned") = Some(outcome);
                });
                slots
                    .into_iter()
                    .map(|s| s.into_inner().expect("slot poisoned").expect("every block ran"))
                    .collect()
            } else {
                (0..grid_dim)
                    .map(|block_idx| {
                        run_block(
                            kernel, block_idx, block_dim, grid_dim, phases, args, &mem,
                            warp_size, read_cfg, race.as_mut(),
                        )
                    })
                    .collect()
            }
        };

        // Merge block outcomes in block-index order: cost totals, warp
        // costs, staged atomics, fault counters. This fixed order is what
        // makes the result independent of the host schedule.
        let mut per_block_warp_costs = Vec::with_capacity(grid_dim);
        let mut total_cost = CostCounter::default();
        let mut bit_flips = 0u64;
        for outcome in outcomes {
            total_cost.add(&outcome.total);
            bit_flips += outcome.bit_flips;
            per_block_warp_costs.push(outcome.warps);
            outcome.atomics.apply(&mut self.pool);
        }
        if let Some(f) = self.fault.as_mut() {
            f.absorb_bit_flips(bit_flips);
        }

        if let Some(race) = race {
            if let Some(msg) = race.first_race {
                return Err(LaunchError::DataRace(msg));
            }
        }

        let timing = model_kernel_time(&self.spec, &cfg, &per_block_warp_costs, phases);

        // Watchdog: an injected hang inflates the launch's modeled time; if
        // it exceeds `watchdog_factor ×` the clean cost-model budget, the
        // kernel is killed. The device was busy until the kill, so the
        // budget is charged to the timeline; the launch's writes are
        // unspecified (treated as failed by the recovery layers).
        if hang {
            let f = self.fault.as_mut().expect("hang implies an installed plan");
            let plan = f.plan();
            let budget = timing.seconds * plan.watchdog_factor;
            let hung_seconds = timing.seconds * plan.hang_slowdown;
            if hung_seconds > budget {
                f.record_watchdog_kill();
                self.profiler.push(TimelineEvent::Kernel {
                    name: format!("{}[watchdog-kill]", kernel.name()),
                    config: cfg,
                    seconds: budget,
                    total_cost,
                });
                return Err(LaunchError::KernelTimeout {
                    kernel: kernel.name().to_string(),
                    modeled_seconds: hung_seconds,
                    budget_seconds: budget,
                });
            }
        }

        self.profiler.push(TimelineEvent::Kernel {
            name: kernel.name().to_string(),
            config: cfg,
            seconds: timing.seconds,
            total_cost,
        });
        Ok(LaunchStats { timing, total_cost, threads: cfg.total_threads() })
    }

    /// The profiler timeline.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Open a named span on the profiler timeline (e.g. one per SA
    /// generation). Spans carry no modeled time; they only annotate the
    /// timeline for trace rendering.
    pub fn span_begin(&mut self, name: impl Into<String>) {
        self.profiler.span_begin(name);
    }

    /// Open a named span carrying key/value metadata (e.g. the generation
    /// index and temperature of one SA generation), rendered into the trace
    /// sink's args.
    pub fn span_begin_args(&mut self, name: impl Into<String>, args: Vec<(String, String)>) {
        self.profiler.span_begin_args(name, args);
    }

    /// Close the innermost open span with this name.
    pub fn span_end(&mut self, name: impl Into<String>) {
        self.profiler.span_end(name);
    }

    /// Reset the profiler (start a new measurement window).
    pub fn reset_profiler(&mut self) {
        self.profiler.reset();
    }

    /// Total modeled device time so far (kernels + transfers), seconds.
    pub fn elapsed_modeled(&self) -> f64 {
        self.profiler.total_seconds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Doubles every element of its single argument.
    struct Double;
    impl Kernel for Double {
        type Shared = ();
        type ThreadState = ();
        fn name(&self) -> &str {
            "double"
        }
        fn make_shared(&self, _block: usize) {}
        fn phase<C: DeviceCtx>(&self, _p: usize, ctx: &mut C, _s: &mut (), _t: &mut ()) {
            let buf = ctx.arg_buf(0);
            let gid = ctx.global_id();
            if gid < buf.len() {
                let v: i64 = ctx.read(buf, gid);
                ctx.write(buf, gid, v * 2);
            }
        }
    }

    #[test]
    fn simple_kernel_runs() {
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        let buf = gpu.alloc::<i64>(10);
        gpu.h2d(buf, &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        let stats = gpu.launch(&Double, LaunchConfig::cover(10, 4), &[buf.erased()]).unwrap();
        assert_eq!(gpu.d2h(buf), vec![2, 4, 6, 8, 10, 12, 14, 16, 18, 20]);
        assert_eq!(stats.threads, 12); // 3 blocks × 4
        assert!(stats.timing.seconds > 0.0);
        assert!(stats.total_cost.global_transactions >= 20);
    }

    /// Phase 0 writes shared; phase 1 reads it — barrier semantics.
    struct BarrierSum;
    impl Kernel for BarrierSum {
        type Shared = Vec<i64>;
        type ThreadState = ();
        fn name(&self) -> &str {
            "barrier_sum"
        }
        fn make_shared(&self, block: usize) -> Vec<i64> {
            vec![0; block]
        }
        fn shared_mem_bytes(&self, block: usize) -> usize {
            block * 8
        }
        fn num_phases(&self) -> usize {
            2
        }
        fn phase<C: DeviceCtx>(&self, p: usize, ctx: &mut C, sh: &mut Vec<i64>, _t: &mut ()) {
            let buf = ctx.arg_buf(0);
            match p {
                0 => {
                    // Each thread stages its value; thread 0 reads *everyone's*
                    // value in phase 1, which is only safe past the barrier.
                    let v: i64 = ctx.read(buf, ctx.global_id());
                    sh[ctx.thread_idx()] = v;
                    ctx.charge_shared(1);
                }
                _ => {
                    if ctx.thread_idx() == 0 {
                        let sum: i64 = sh.iter().sum();
                        ctx.charge_shared(sh.len() as u64);
                        ctx.write(buf, ctx.block_idx() * ctx.block_dim(), sum);
                    }
                }
            }
        }
    }

    #[test]
    fn barrier_makes_staged_values_visible() {
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        let buf = gpu.alloc::<i64>(4);
        gpu.h2d(buf, &[1, 2, 3, 4]);
        gpu.launch(&BarrierSum, LaunchConfig::linear(1, 4), &[buf.erased()]).unwrap();
        assert_eq!(gpu.d2h(buf)[0], 10);
    }

    /// All threads write location 0 — an obvious data race.
    struct Racy;
    impl Kernel for Racy {
        type Shared = ();
        type ThreadState = ();
        fn name(&self) -> &str {
            "racy"
        }
        fn make_shared(&self, _b: usize) {}
        fn phase<C: DeviceCtx>(&self, _p: usize, ctx: &mut C, _s: &mut (), _t: &mut ()) {
            let buf = ctx.arg_buf(0);
            let id = ctx.global_id() as i64;
            ctx.write(buf, 0, id);
        }
    }

    #[test]
    fn race_detection_catches_conflicting_writes() {
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        gpu.set_race_detection(true);
        let buf = gpu.alloc::<i64>(1);
        let err = gpu.launch(&Racy, LaunchConfig::linear(1, 4), &[buf.erased()]).unwrap_err();
        assert!(matches!(err, LaunchError::DataRace(_)), "{err}");
    }

    #[test]
    fn race_detection_allows_disjoint_writes() {
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        gpu.set_race_detection(true);
        let buf = gpu.alloc::<i64>(8);
        gpu.launch(&Double, LaunchConfig::linear(2, 4), &[buf.erased()]).unwrap();
    }

    /// Same-location atomic min from every thread — must not race and must
    /// produce the true minimum.
    struct AtomicMin;
    impl Kernel for AtomicMin {
        type Shared = ();
        type ThreadState = ();
        fn name(&self) -> &str {
            "atomic_min"
        }
        fn make_shared(&self, _b: usize) {}
        fn phase<C: DeviceCtx>(&self, _p: usize, ctx: &mut C, _s: &mut (), _t: &mut ()) {
            let values = ctx.arg_buf(0);
            let out = ctx.arg_buf(1);
            let v: i64 = ctx.read(values, ctx.global_id());
            ctx.atomic_min_i64(out, 0, v);
        }
    }

    #[test]
    fn atomic_min_finds_minimum_without_race() {
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        gpu.set_race_detection(true);
        let values = gpu.alloc::<i64>(8);
        gpu.h2d(values, &[9, 4, 7, 1, 8, 2, 6, 3]);
        let out = gpu.alloc::<i64>(1);
        gpu.h2d(out, &[i64::MAX]);
        let stats = gpu
            .launch(&AtomicMin, LaunchConfig::linear(2, 4), &[values.erased(), out.erased()])
            .unwrap();
        assert_eq!(gpu.d2h(out)[0], 1);
        assert_eq!(stats.total_cost.atomics, 8);
    }

    #[test]
    fn launch_rejects_oversized_block() {
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        let buf = gpu.alloc::<i64>(1);
        let err =
            gpu.launch(&Double, LaunchConfig::linear(1, 2048), &[buf.erased()]).unwrap_err();
        assert!(matches!(err, LaunchError::InvalidConfig(_)));
    }

    #[test]
    fn constant_memory_limit_enforced() {
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        let big = vec![0i64; 9000]; // 72 KB > 64 KB
        let err = gpu.alloc_const(&big).unwrap_err();
        assert!(matches!(err, LaunchError::ConstantMemoryExceeded { .. }));
        // A small region still fits afterwards.
        assert!(gpu.alloc_const(&[1i64, 2, 3]).is_ok());
    }

    #[test]
    fn transfers_are_profiled() {
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        let buf = gpu.alloc::<i64>(1000);
        gpu.h2d(buf, &vec![0i64; 1000]);
        let _ = gpu.d2h(buf);
        assert!(gpu.profiler().transfer_seconds() > 0.0);
        assert_eq!(gpu.profiler().events().len(), 2);
        assert!(gpu.elapsed_modeled() > 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_read_panics() {
        struct Oob;
        impl Kernel for Oob {
            type Shared = ();
            type ThreadState = ();
            fn name(&self) -> &str {
                "oob"
            }
            fn make_shared(&self, _b: usize) {}
            fn phase<C: DeviceCtx>(&self, _p: usize, ctx: &mut C, _s: &mut (), _t: &mut ()) {
                let buf = ctx.arg_buf(0);
                let _: i64 = ctx.read(buf, 99);
            }
        }
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        let buf = gpu.alloc::<i64>(4);
        let _ = gpu.launch(&Oob, LaunchConfig::linear(1, 1), &[buf.erased()]);
    }

    /// Doubles with wrapping arithmetic: under bit-flip injection a read can
    /// return any i64, so the test kernel must tolerate extreme values
    /// (exactly the hardening real kernels need).
    struct WrappingDouble;
    impl Kernel for WrappingDouble {
        type Shared = ();
        type ThreadState = ();
        fn name(&self) -> &str {
            "wrapping_double"
        }
        fn make_shared(&self, _block: usize) {}
        fn phase<C: DeviceCtx>(&self, _p: usize, ctx: &mut C, _s: &mut (), _t: &mut ()) {
            let buf = ctx.arg_buf(0);
            let gid = ctx.global_id();
            if gid < buf.len() {
                let v: i64 = ctx.read(buf, gid);
                ctx.write(buf, gid, v.wrapping_mul(2));
            }
        }
    }

    /// Run `launches` WrappingDouble launches under `plan`, returning the
    /// error sequence, final memory and fault stats.
    fn faulted_run(
        plan: FaultPlan,
        launches: usize,
    ) -> (Vec<Option<LaunchError>>, Vec<i64>, FaultStats) {
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        let buf = gpu.alloc::<i64>(8);
        gpu.h2d(buf, &[1, 2, 3, 4, 5, 6, 7, 8]);
        gpu.set_fault_plan(Some(plan));
        let mut errors = Vec::new();
        for _ in 0..launches {
            errors.push(
                gpu.launch(&WrappingDouble, LaunchConfig::linear(2, 4), &[buf.erased()]).err(),
            );
        }
        (errors, gpu.d2h(buf), gpu.fault_stats())
    }

    #[test]
    fn fault_sequence_is_reproducible_per_seed() {
        let plan = FaultPlan::with_rates(77, 0.3, 0.02, 0.1);
        let (e1, m1, s1) = faulted_run(plan.clone(), 200);
        let (e2, m2, s2) = faulted_run(plan.clone(), 200);
        assert_eq!(e1, e2, "same plan must reproduce the identical error sequence");
        assert_eq!(m1, m2, "same plan must reproduce identical memory");
        assert_eq!(s1, s2);
        assert!(s1.transient_launch_failures > 0);
        assert!(s1.hung_kernels > 0);
        assert_eq!(s1.launches_attempted, 200);
        // A different seed diverges.
        let (e3, _, _) = faulted_run(plan.reseeded(78), 200);
        assert_ne!(e1, e3);
    }

    #[test]
    fn transient_failure_leaves_memory_untouched() {
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        let buf = gpu.alloc::<i64>(4);
        gpu.h2d(buf, &[1, 2, 3, 4]);
        gpu.set_fault_plan(Some(FaultPlan::with_rates(0, 1.0, 0.0, 0.0)));
        let err = gpu.launch(&Double, LaunchConfig::linear(1, 4), &[buf.erased()]).unwrap_err();
        assert!(matches!(err, LaunchError::TransientFault(_)), "{err}");
        assert!(err.is_transient());
        assert_eq!(gpu.peek(buf), vec![1, 2, 3, 4], "failed launch must not execute");
        assert_eq!(gpu.profiler().kernel_launches(), 0);
    }

    #[test]
    fn watchdog_kills_hung_kernels_and_charges_the_budget() {
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        let buf = gpu.alloc::<i64>(4);
        gpu.h2d(buf, &[1, 2, 3, 4]);
        let plan = FaultPlan {
            watchdog_factor: 8.0,
            hang_slowdown: 1e4,
            ..FaultPlan::with_rates(0, 0.0, 0.0, 1.0)
        };
        gpu.set_fault_plan(Some(plan));
        let err = gpu.launch(&Double, LaunchConfig::linear(1, 4), &[buf.erased()]).unwrap_err();
        let LaunchError::KernelTimeout { kernel, modeled_seconds, budget_seconds } = &err else {
            panic!("expected KernelTimeout, got {err}");
        };
        assert_eq!(kernel, "double");
        assert!(modeled_seconds > budget_seconds);
        assert!(err.is_transient());
        assert_eq!(gpu.fault_stats().hung_kernels, 1);
        // The timeline charges the watchdog budget for the killed attempt.
        assert!((gpu.profiler().kernel_seconds() - budget_seconds).abs() < 1e-12);
    }

    #[test]
    fn injected_worker_crash_kills_the_device_for_good() {
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        let buf = gpu.alloc::<i64>(4);
        gpu.h2d(buf, &[1, 2, 3, 4]);
        gpu.set_fault_plan(Some(FaultPlan::disabled().reseeded(5).with_worker_crash(1.0, 3)));
        let mut survived = 0u64;
        let err = loop {
            match gpu.launch(&Double, LaunchConfig::linear(1, 4), &[buf.erased()]) {
                Ok(_) => survived += 1,
                Err(e) => break e,
            }
            assert!(survived <= 3, "horizon 3 bounds the crash index");
        };
        assert!(matches!(err, LaunchError::DeviceLost { .. }), "{err}");
        assert!(!err.is_transient(), "a lost device must not be retried in place");
        assert_eq!(gpu.fault_stats().worker_crashes, 1);
        // The device stays dead: every further launch fails without
        // executing, and the crash is not double-counted.
        let before = gpu.peek(buf);
        for _ in 0..5 {
            let e = gpu.launch(&Double, LaunchConfig::linear(1, 4), &[buf.erased()]).unwrap_err();
            assert!(matches!(e, LaunchError::DeviceLost { .. }));
        }
        assert_eq!(gpu.peek(buf), before, "launches on a dead device must not execute");
        assert_eq!(gpu.fault_stats().worker_crashes, 1);
        // Installing a fresh plan models standing up a fresh device.
        gpu.set_fault_plan(None);
        gpu.launch(&Double, LaunchConfig::linear(1, 4), &[buf.erased()]).unwrap();
    }

    #[test]
    fn hang_below_watchdog_budget_completes() {
        // slowdown ≤ factor: the kernel is slow but finishes before the
        // watchdog fires, so the launch succeeds.
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        let buf = gpu.alloc::<i64>(4);
        gpu.h2d(buf, &[1, 2, 3, 4]);
        let plan = FaultPlan {
            watchdog_factor: 8.0,
            hang_slowdown: 2.0,
            ..FaultPlan::with_rates(0, 0.0, 0.0, 1.0)
        };
        gpu.set_fault_plan(Some(plan));
        gpu.launch(&Double, LaunchConfig::linear(1, 4), &[buf.erased()]).unwrap();
        assert_eq!(gpu.fault_stats().hung_kernels, 0);
    }

    #[test]
    fn bit_flips_corrupt_reads_but_not_memory() {
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        let buf = gpu.alloc::<i64>(64);
        let host: Vec<i64> = (0..64).collect();
        gpu.h2d(buf, &host);
        gpu.set_fault_plan(Some(FaultPlan::with_rates(5, 0.0, 1.0, 0.0)));
        let out = gpu.alloc::<i64>(64);

        /// Copies src[gid] → out[gid] (read passes through the fault layer).
        struct CopyK;
        impl Kernel for CopyK {
            type Shared = ();
            type ThreadState = ();
            fn name(&self) -> &str {
                "copy"
            }
            fn make_shared(&self, _b: usize) {}
            fn phase<C: DeviceCtx>(&self, _p: usize, ctx: &mut C, _s: &mut (), _t: &mut ()) {
                let src = ctx.arg_buf(0);
                let dst = ctx.arg_buf(1);
                let gid = ctx.global_id();
                let v: i64 = ctx.read(src, gid);
                ctx.write(dst, gid, v);
            }
        }
        gpu.launch(&CopyK, LaunchConfig::linear(2, 32), &[buf.erased(), out.erased()]).unwrap();
        let copied = gpu.peek(out);
        assert_ne!(copied, host, "flip rate 1.0 must corrupt the copied values");
        for (c, h) in copied.iter().zip(&host) {
            assert_eq!((c ^ h).count_ones(), 1, "exactly one bit flips per read");
        }
        // The *source* memory is intact: flips are read-side transients.
        gpu.set_fault_plan(None);
        assert_eq!(gpu.peek(buf), host);
        assert_eq!(gpu.fault_stats().bit_flips, 0, "stats reset with the plan");
    }

    #[test]
    fn race_detection_still_fires_with_injection_enabled() {
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        gpu.set_race_detection(true);
        gpu.set_fault_plan(Some(FaultPlan::with_rates(11, 0.0, 0.2, 0.0)));
        let buf = gpu.alloc::<i64>(1);
        let err = gpu.launch(&Racy, LaunchConfig::linear(1, 4), &[buf.erased()]).unwrap_err();
        assert!(matches!(err, LaunchError::DataRace(_)), "{err}");
        assert!(!err.is_transient(), "races are bugs, not retryable faults");
    }

    #[test]
    fn inactive_plan_is_not_installed() {
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        gpu.set_fault_plan(Some(FaultPlan::disabled()));
        assert!(gpu.fault_plan().is_none());
        let buf = gpu.alloc::<i64>(4);
        gpu.h2d(buf, &[1, 2, 3, 4]);
        gpu.launch(&Double, LaunchConfig::linear(1, 4), &[buf.erased()]).unwrap();
        assert_eq!(gpu.d2h(buf), vec![2, 4, 6, 8]);
    }

    /// A faulted multi-launch campaign at a given parallelism: returns
    /// everything observable — memory, error sequence, fault stats, and the
    /// modeled clocks bit-for-bit.
    fn faulted_campaign_at(
        par: SimParallelism,
    ) -> (Vec<i64>, Vec<Option<LaunchError>>, FaultStats, u64, u64) {
        let mut spec = DeviceSpec::gt560m();
        spec.parallelism = par;
        let mut gpu = Gpu::new(spec);
        let buf = gpu.alloc::<i64>(256);
        let host: Vec<i64> = (0..256).collect();
        gpu.h2d(buf, &host);
        gpu.set_fault_plan(Some(FaultPlan::with_rates(21, 0.2, 0.05, 0.1)));
        let mut errors = Vec::new();
        for _ in 0..60 {
            errors.push(
                gpu.launch(&WrappingDouble, LaunchConfig::linear(8, 32), &[buf.erased()]).err(),
            );
        }
        let stats = gpu.fault_stats();
        let kernel_bits = gpu.profiler().kernel_seconds().to_bits();
        let clock_bits = gpu.elapsed_modeled().to_bits();
        (gpu.d2h(buf), errors, stats, kernel_bits, clock_bits)
    }

    #[test]
    fn faulted_campaign_is_byte_identical_at_every_thread_count() {
        let serial = faulted_campaign_at(SimParallelism::Serial);
        for k in [1usize, 2, 8] {
            let par = faulted_campaign_at(SimParallelism::Threads(k));
            assert_eq!(serial, par, "threads({k}) diverged from serial");
        }
        let auto = faulted_campaign_at(SimParallelism::Auto);
        assert_eq!(serial, auto, "auto diverged from serial");
    }

    /// Every thread folds into two cross-block accumulators: the global
    /// minimum of its value and a population count.
    struct MinAndCount;
    impl Kernel for MinAndCount {
        type Shared = ();
        type ThreadState = ();
        fn name(&self) -> &str {
            "min_and_count"
        }
        fn make_shared(&self, _b: usize) {}
        fn phase<C: DeviceCtx>(&self, _p: usize, ctx: &mut C, _s: &mut (), _t: &mut ()) {
            let values = ctx.arg_buf(0);
            let out = ctx.arg_buf(1);
            let v: i64 = ctx.read(values, ctx.global_id());
            ctx.atomic_min_i64(out, 0, v);
            ctx.atomic_add_i64(out, 1, 1);
        }
    }

    #[test]
    fn atomics_merge_exactly_across_parallel_blocks() {
        let mut spec = DeviceSpec::gt560m();
        spec.parallelism = SimParallelism::Threads(4);
        let mut gpu = Gpu::new(spec);
        let values = gpu.alloc::<i64>(128);
        let host: Vec<i64> = (0..128).map(|i| 1000 - 7 * i as i64).collect();
        gpu.h2d(values, &host);
        let out = gpu.alloc::<i64>(2);
        gpu.h2d(out, &[i64::MAX, 0]);
        let stats = gpu
            .launch(&MinAndCount, LaunchConfig::linear(4, 32), &[values.erased(), out.erased()])
            .unwrap();
        assert_eq!(gpu.d2h(out), vec![*host.iter().min().unwrap(), 128]);
        assert_eq!(stats.total_cost.atomics, 256);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics_propagate_from_worker_threads() {
        struct Oob;
        impl Kernel for Oob {
            type Shared = ();
            type ThreadState = ();
            fn name(&self) -> &str {
                "oob"
            }
            fn make_shared(&self, _b: usize) {}
            fn phase<C: DeviceCtx>(&self, _p: usize, ctx: &mut C, _s: &mut (), _t: &mut ()) {
                let buf = ctx.arg_buf(0);
                // Only the last block trips the bug, so the panic originates
                // on whichever worker drew it — not the host thread.
                if ctx.block_idx() == 3 {
                    let _: i64 = ctx.read(buf, 99);
                }
            }
        }
        let mut spec = DeviceSpec::gt560m();
        spec.parallelism = SimParallelism::Threads(4);
        let mut gpu = Gpu::new(spec);
        let buf = gpu.alloc::<i64>(4);
        let _ = gpu.launch(&Oob, LaunchConfig::linear(4, 8), &[buf.erased()]);
    }

    #[test]
    fn race_detection_falls_back_to_serial_and_still_fires() {
        let mut spec = DeviceSpec::gt560m();
        spec.parallelism = SimParallelism::Threads(8);
        let mut gpu = Gpu::new(spec);
        gpu.set_race_detection(true);
        let buf = gpu.alloc::<i64>(1);
        let err = gpu.launch(&Racy, LaunchConfig::linear(2, 4), &[buf.erased()]).unwrap_err();
        assert!(matches!(err, LaunchError::DataRace(_)), "{err}");
        // With detection off again, the same Gpu dispatches in parallel and
        // clean kernels still run.
        gpu.set_race_detection(false);
        let data = gpu.alloc::<i64>(8);
        gpu.h2d(data, &[1, 2, 3, 4, 5, 6, 7, 8]);
        gpu.launch(&Double, LaunchConfig::linear(2, 4), &[data.erased()]).unwrap();
        assert_eq!(gpu.d2h(data), vec![2, 4, 6, 8, 10, 12, 14, 16]);
    }

    #[test]
    fn parallelism_is_reconfigurable_between_launches() {
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        assert_eq!(gpu.parallelism(), SimParallelism::Serial);
        let buf = gpu.alloc::<i64>(8);
        gpu.h2d(buf, &[1, 2, 3, 4, 5, 6, 7, 8]);
        gpu.launch(&Double, LaunchConfig::linear(2, 4), &[buf.erased()]).unwrap();
        gpu.set_parallelism(SimParallelism::Threads(2));
        gpu.launch(&Double, LaunchConfig::linear(2, 4), &[buf.erased()]).unwrap();
        gpu.set_parallelism(SimParallelism::Threads(5));
        gpu.launch(&Double, LaunchConfig::linear(2, 4), &[buf.erased()]).unwrap();
        assert_eq!(gpu.d2h(buf), vec![8, 16, 24, 32, 40, 48, 56, 64]);
    }

    #[test]
    fn rng_state_survives_round_trip_through_device_memory() {
        struct RngStep;
        impl Kernel for RngStep {
            type Shared = ();
            type ThreadState = ();
            fn name(&self) -> &str {
                "rng_step"
            }
            fn make_shared(&self, _b: usize) {}
            fn phase<C: DeviceCtx>(&self, _p: usize, ctx: &mut C, _s: &mut (), _t: &mut ()) {
                let states = ctx.arg_buf(0);
                let out = ctx.arg_buf(1);
                let slot = ctx.global_id();
                let mut rng = ctx.load_rng(states, slot);
                let v = rng.next_u32() as i64;
                ctx.write(out, slot, v);
                ctx.store_rng(states, slot, &rng);
            }
        }
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        let states = gpu.alloc::<u64>(2 * 3);
        let mut host_states = Vec::new();
        for t in 0..2 {
            host_states.extend(XorWow::new(99, t as u64).pack());
        }
        gpu.h2d(states, &host_states);
        let out = gpu.alloc::<i64>(2);
        gpu.launch(&RngStep, LaunchConfig::linear(1, 2), &[states.erased(), out.erased()])
            .unwrap();
        let first = gpu.d2h(out);
        gpu.launch(&RngStep, LaunchConfig::linear(1, 2), &[states.erased(), out.erased()])
            .unwrap();
        let second = gpu.d2h(out);
        // Host reference streams must match the device sequence.
        for t in 0..2 {
            let mut reference = XorWow::new(99, t as u64);
            assert_eq!(first[t], reference.next_u32() as i64);
            assert_eq!(second[t], reference.next_u32() as i64);
        }
    }
}
