//! XORWOW — the default pseudo-random generator of NVIDIA cuRAND.
//!
//! The paper generates all device-side randomness (perturbation windows,
//! Fisher–Yates draws, metropolis uniforms) "using the cuRand library".
//! This module implements the same XORWOW algorithm (Marsaglia 2003, as
//! shipped in cuRAND): a 160-bit xorshift state plus a Weyl counter.
//!
//! Each simulated thread owns one stream, seeded from `(seed, stream id)`
//! like `curand_init(seed, subsequence, …)`. State packs into three `u64`
//! words so pipelines can keep it resident in simulated global memory
//! between kernel launches, exactly as CUDA code keeps `curandState` arrays
//! on the device.

/// One XORWOW stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorWow {
    x: u32,
    y: u32,
    z: u32,
    w: u32,
    v: u32,
    d: u32,
}

/// Weyl-sequence increment used by XORWOW.
const WEYL: u32 = 362_437;

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl XorWow {
    /// Initialize stream `stream` under `seed` (cf. `curand_init`). Distinct
    /// `(seed, stream)` pairs receive decorrelated states.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut s = splitmix64(seed ^ splitmix64(stream.wrapping_mul(0x9E37_79B9)));
        let mut word = || {
            s = splitmix64(s);
            // Never allow the all-zero xorshift state.
            (s as u32) | 1
        };
        let mut rng = XorWow { x: word(), y: word(), z: word(), w: word(), v: word(), d: s as u32 };
        // Warm up past any seeding artifacts.
        for _ in 0..8 {
            rng.next_u32();
        }
        rng
    }

    /// Next raw 32-bit output.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let t = self.x ^ (self.x >> 2);
        self.x = self.y;
        self.y = self.z;
        self.z = self.w;
        self.w = self.v;
        self.v = (self.v ^ (self.v << 4)) ^ (t ^ (t << 1));
        self.d = self.d.wrapping_add(WEYL);
        self.d.wrapping_add(self.v)
    }

    /// Uniform float in `[0, 1)` — the "normalization … to obtain a floating
    /// point value in [0,1]" the paper applies to cuRAND integers.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random bits → exact dyadic in [0,1).
        let hi = (self.next_u32() >> 6) as u64; // 26 bits
        let lo = (self.next_u32() >> 5) as u64; // 27 bits
        ((hi << 27) | lo) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` (Lemire-style rejection-free widening;
    /// bias is negligible for the small bounds used by Fisher–Yates).
    #[inline]
    pub fn next_below(&mut self, bound: u32) -> u32 {
        debug_assert!(bound > 0);
        ((self.next_u32() as u64 * bound as u64) >> 32) as u32
    }

    /// Pack into three words (device-resident `curandState` analogue).
    pub fn pack(&self) -> [u64; 3] {
        [
            (self.x as u64) << 32 | self.y as u64,
            (self.z as u64) << 32 | self.w as u64,
            (self.v as u64) << 32 | self.d as u64,
        ]
    }

    /// Unpack from [`pack`](Self::pack)'s representation.
    pub fn unpack(words: [u64; 3]) -> Self {
        XorWow {
            x: (words[0] >> 32) as u32,
            y: words[0] as u32,
            z: (words[1] >> 32) as u32,
            w: words[1] as u32,
            v: (words[2] >> 32) as u32,
            d: words[2] as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference: the raw XORWOW recurrence from Marsaglia's paper, checked
    /// against a direct transcription for a fixed starting state.
    #[test]
    fn recurrence_matches_reference_transcription() {
        let mut rng = XorWow { x: 123456789, y: 362436069, z: 521288629, w: 88675123, v: 5783321, d: 6615241 };
        // Direct transcription of xorwow():
        let mut st = (123456789u32, 362436069u32, 521288629u32, 88675123u32, 5783321u32, 6615241u32);
        let mut reference = || {
            let t = st.0 ^ (st.0 >> 2);
            st.0 = st.1;
            st.1 = st.2;
            st.2 = st.3;
            st.3 = st.4;
            st.4 = (st.4 ^ (st.4 << 4)) ^ (t ^ (t << 1));
            st.5 = st.5.wrapping_add(362437);
            st.5.wrapping_add(st.4)
        };
        for _ in 0..100 {
            assert_eq!(rng.next_u32(), reference());
        }
    }

    #[test]
    fn streams_are_decorrelated() {
        let mut a = XorWow::new(42, 0);
        let mut b = XorWow::new(42, 1);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same <= 1, "{same} collisions in 64 draws");
    }

    #[test]
    fn deterministic_per_seed_and_stream() {
        let mut a = XorWow::new(7, 3);
        let mut b = XorWow::new(7, 3);
        for _ in 0..32 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn floats_lie_in_unit_interval_and_fill_it() {
        let mut rng = XorWow::new(1, 0);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        let mut sum = 0.0;
        const N: usize = 10_000;
        for _ in 0..N {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
            sum += u;
        }
        assert!(lo < 0.01, "min {lo}");
        assert!(hi > 0.99, "max {hi}");
        let mean = sum / N as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn next_below_respects_bound_and_is_roughly_uniform() {
        let mut rng = XorWow::new(9, 9);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            counts[rng.next_below(7) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "bucket {i}: {c}");
        }
    }

    #[test]
    fn pack_unpack_round_trips_mid_stream() {
        let mut rng = XorWow::new(11, 5);
        for _ in 0..17 {
            rng.next_u32();
        }
        let packed = rng.pack();
        let mut restored = XorWow::unpack(packed);
        let mut original = rng;
        for _ in 0..32 {
            assert_eq!(original.next_u32(), restored.next_u32());
        }
    }

    #[test]
    fn state_never_becomes_all_zero() {
        // The xorshift part must avoid the absorbing zero state; seeding
        // guarantees nonzero words.
        for stream in 0..100 {
            let rng = XorWow::new(0, stream); // adversarial zero seed
            assert!(rng.x != 0 || rng.y != 0 || rng.z != 0 || rng.w != 0 || rng.v != 0);
        }
    }
}
