//! The simulator's profiler: a timeline of kernel launches and transfers
//! with modeled durations (the stand-in for the "Nvidia CUDA profiler" the
//! paper used to tune its implementation).

use crate::cost::CostCounter;
use crate::grid::LaunchConfig;
use std::fmt::Write as _;

/// Direction of a host↔device copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferDir {
    /// Host → device (`cudaMemcpyHostToDevice`).
    HostToDevice,
    /// Device → host (`cudaMemcpyDeviceToHost`).
    DeviceToHost,
}

/// One profiled event.
#[derive(Debug, Clone, PartialEq)]
pub enum TimelineEvent {
    /// A kernel launch.
    Kernel {
        /// Kernel name.
        name: String,
        /// Launch configuration.
        config: LaunchConfig,
        /// Modeled duration, seconds.
        seconds: f64,
        /// Device-wide aggregated cost.
        total_cost: CostCounter,
    },
    /// A host↔device transfer.
    Transfer {
        /// Copy direction.
        dir: TransferDir,
        /// Payload size.
        bytes: usize,
        /// Modeled duration, seconds.
        seconds: f64,
    },
}

impl TimelineEvent {
    /// Modeled duration of the event, seconds.
    #[must_use]
    pub fn seconds(&self) -> f64 {
        match self {
            TimelineEvent::Kernel { seconds, .. } => *seconds,
            TimelineEvent::Transfer { seconds, .. } => *seconds,
        }
    }
}

/// Accumulating timeline of one simulated device.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    events: Vec<TimelineEvent>,
}

impl Profiler {
    /// Empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn push(&mut self, e: TimelineEvent) {
        self.events.push(e);
    }

    /// All recorded events, in order.
    #[must_use]
    pub fn events(&self) -> &[TimelineEvent] {
        &self.events
    }

    /// Total modeled device time (kernels + transfers), seconds. The paper's
    /// speed-ups "incorporate all the memory transfers between the host and
    /// the device", so this is the number the benches report.
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.events.iter().map(|e| e.seconds()).sum()
    }

    /// Modeled seconds spent in kernels only.
    #[must_use]
    pub fn kernel_seconds(&self) -> f64 {
        self.events
            .iter()
            .filter(|e| matches!(e, TimelineEvent::Kernel { .. }))
            .map(|e| e.seconds())
            .sum()
    }

    /// Modeled seconds spent in transfers only.
    #[must_use]
    pub fn transfer_seconds(&self) -> f64 {
        self.events
            .iter()
            .filter(|e| matches!(e, TimelineEvent::Transfer { .. }))
            .map(|e| e.seconds())
            .sum()
    }

    /// Number of kernel launches recorded.
    #[must_use]
    pub fn kernel_launches(&self) -> usize {
        self.events.iter().filter(|e| matches!(e, TimelineEvent::Kernel { .. })).count()
    }

    /// Drop all events (start a new measurement window).
    pub fn reset(&mut self) {
        self.events.clear();
    }

    /// Per-kernel-name summary table (launch count, total modeled ms),
    /// rendered as text.
    #[must_use]
    pub fn summary(&self) -> String {
        use std::collections::BTreeMap;
        let mut per_kernel: BTreeMap<&str, (usize, f64)> = BTreeMap::new();
        let mut transfers = (0usize, 0usize, 0.0f64);
        for e in &self.events {
            match e {
                TimelineEvent::Kernel { name, seconds, .. } => {
                    let entry = per_kernel.entry(name).or_default();
                    entry.0 += 1;
                    entry.1 += seconds;
                }
                TimelineEvent::Transfer { bytes, seconds, .. } => {
                    transfers.0 += 1;
                    transfers.1 += bytes;
                    transfers.2 += seconds;
                }
            }
        }
        let mut out = String::from("kernel                      launches   modeled-ms\n");
        for (name, (count, secs)) in &per_kernel {
            writeln!(out, "{name:<28}{count:>8}   {:>10.3}", secs * 1e3)
                .expect("writing to String cannot fail");
        }
        writeln!(
            out,
            "transfers: {} copies, {} bytes, {:.3} ms",
            transfers.0,
            transfers.1,
            transfers.2 * 1e3
        )
        .expect("writing to String cannot fail");
        writeln!(out, "total modeled time: {:.3} ms", self.total_seconds() * 1e3)
            .expect("writing to String cannot fail");
        out
    }
}

/// Cross-run aggregation of profiler timelines — the per-device utilization
/// view a multi-run consumer (device pool, campaign runner) needs, instead
/// of the raw event lists of each individual [`Profiler`] window.
///
/// `busy_seconds` accumulates modeled device-busy time across every absorbed
/// window; dividing by a wall-clock measurement window gives the device's
/// utilization (a modeled-busy / wall-observed ratio, the same shape
/// `nvidia-smi` reports).
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct ProfilerAggregate {
    /// Total modeled busy seconds (kernels + transfers) across all windows.
    pub busy_seconds: f64,
    /// Modeled kernel seconds across all windows.
    pub kernel_seconds: f64,
    /// Modeled transfer seconds across all windows.
    pub transfer_seconds: f64,
    /// Kernel launches across all windows.
    pub kernel_launches: usize,
    /// Profiler windows absorbed.
    pub windows: usize,
}

impl ProfilerAggregate {
    /// Empty aggregate.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one profiler window into the aggregate.
    pub fn absorb(&mut self, p: &Profiler) {
        self.record(p.total_seconds(), p.kernel_seconds(), p.transfer_seconds(), p.kernel_launches());
    }

    /// Fold already-extracted window totals into the aggregate (for
    /// consumers that only kept the numbers, not the `Profiler`).
    pub fn record(&mut self, total: f64, kernel: f64, transfer: f64, launches: usize) {
        self.busy_seconds += total;
        self.kernel_seconds += kernel;
        self.transfer_seconds += transfer;
        self.kernel_launches += launches;
        self.windows += 1;
    }

    /// Busy-seconds / wall-seconds utilization over a measurement window.
    /// Returns 0 for an empty or unstarted window.
    #[must_use]
    pub fn utilization(&self, wall_seconds: f64) -> f64 {
        if wall_seconds <= 0.0 {
            0.0
        } else {
            self.busy_seconds / wall_seconds
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel_event(name: &str, secs: f64) -> TimelineEvent {
        TimelineEvent::Kernel {
            name: name.into(),
            config: LaunchConfig::linear(1, 32),
            seconds: secs,
            total_cost: CostCounter::default(),
        }
    }

    #[test]
    fn totals_split_by_kind() {
        let mut p = Profiler::new();
        p.push(kernel_event("fitness", 0.002));
        p.push(TimelineEvent::Transfer { dir: TransferDir::HostToDevice, bytes: 64, seconds: 0.001 });
        p.push(kernel_event("reduce", 0.003));
        assert!((p.total_seconds() - 0.006).abs() < 1e-12);
        assert!((p.kernel_seconds() - 0.005).abs() < 1e-12);
        assert!((p.transfer_seconds() - 0.001).abs() < 1e-12);
        assert_eq!(p.kernel_launches(), 2);
        assert_eq!(p.events().len(), 3);
    }

    #[test]
    fn summary_mentions_each_kernel() {
        let mut p = Profiler::new();
        p.push(kernel_event("fitness", 0.002));
        p.push(kernel_event("fitness", 0.002));
        p.push(kernel_event("perturb", 0.001));
        let s = p.summary();
        assert!(s.contains("fitness"));
        assert!(s.contains("perturb"));
        assert!(s.contains("total modeled time"));
    }

    #[test]
    fn reset_clears() {
        let mut p = Profiler::new();
        p.push(kernel_event("k", 1.0));
        p.reset();
        assert_eq!(p.total_seconds(), 0.0);
        assert!(p.events().is_empty());
    }

    #[test]
    fn aggregate_accumulates_across_windows() {
        let mut window_a = Profiler::new();
        window_a.push(kernel_event("fitness", 0.002));
        window_a.push(TimelineEvent::Transfer {
            dir: TransferDir::HostToDevice,
            bytes: 64,
            seconds: 0.001,
        });
        let mut window_b = Profiler::new();
        window_b.push(kernel_event("reduce", 0.003));

        let mut agg = ProfilerAggregate::new();
        agg.absorb(&window_a);
        agg.absorb(&window_b);
        assert!((agg.busy_seconds - 0.006).abs() < 1e-12);
        assert!((agg.kernel_seconds - 0.005).abs() < 1e-12);
        assert!((agg.transfer_seconds - 0.001).abs() < 1e-12);
        assert_eq!(agg.kernel_launches, 2);
        assert_eq!(agg.windows, 2);
    }

    #[test]
    fn utilization_is_busy_over_wall() {
        let mut agg = ProfilerAggregate::new();
        agg.record(0.5, 0.4, 0.1, 10);
        assert!((agg.utilization(2.0) - 0.25).abs() < 1e-12);
        assert_eq!(agg.utilization(0.0), 0.0, "degenerate window reports 0, not NaN");
        assert_eq!(ProfilerAggregate::new().utilization(1.0), 0.0);
    }
}
