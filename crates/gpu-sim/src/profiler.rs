//! The simulator's profiler: a timeline of kernel launches and transfers
//! with modeled durations (the stand-in for the "Nvidia CUDA profiler" the
//! paper used to tune its implementation).

use crate::cost::CostCounter;
use crate::grid::LaunchConfig;
use cdd_metrics::trace::TraceEvent;
use cdd_metrics::{modeled_seconds_buckets, MetricsRegistry};
use std::fmt::Write as _;

/// Direction of a host↔device copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferDir {
    /// Host → device (`cudaMemcpyHostToDevice`).
    HostToDevice,
    /// Device → host (`cudaMemcpyDeviceToHost`).
    DeviceToHost,
}

/// One profiled event.
#[derive(Debug, Clone, PartialEq)]
pub enum TimelineEvent {
    /// A kernel launch.
    Kernel {
        /// Kernel name.
        name: String,
        /// Launch configuration.
        config: LaunchConfig,
        /// Modeled duration, seconds.
        seconds: f64,
        /// Device-wide aggregated cost.
        total_cost: CostCounter,
    },
    /// A host↔device transfer.
    Transfer {
        /// Copy direction.
        dir: TransferDir,
        /// Payload size.
        bytes: usize,
        /// Modeled duration, seconds.
        seconds: f64,
    },
    /// Start of a named span (zero modeled duration — an annotation layered
    /// over the timeline by the pipelines, e.g. one span per SA generation).
    SpanBegin {
        /// Span label.
        name: String,
        /// Key/value metadata attached to the span (e.g. `gen`,
        /// `temperature` for one SA generation), rendered into the trace
        /// sink's args.
        args: Vec<(String, String)>,
    },
    /// End of the innermost open span with this name.
    SpanEnd {
        /// Span label.
        name: String,
    },
}

impl TimelineEvent {
    /// Modeled duration of the event, seconds (spans are instantaneous
    /// annotations and contribute nothing).
    #[must_use]
    pub fn seconds(&self) -> f64 {
        match self {
            TimelineEvent::Kernel { seconds, .. } => *seconds,
            TimelineEvent::Transfer { seconds, .. } => *seconds,
            TimelineEvent::SpanBegin { .. } | TimelineEvent::SpanEnd { .. } => 0.0,
        }
    }
}

/// Accumulating timeline of one simulated device.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    events: Vec<TimelineEvent>,
}

impl Profiler {
    /// Empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn push(&mut self, e: TimelineEvent) {
        self.events.push(e);
    }

    /// Open a named span on the timeline (zero modeled duration).
    pub fn span_begin(&mut self, name: impl Into<String>) {
        self.events.push(TimelineEvent::SpanBegin { name: name.into(), args: Vec::new() });
    }

    /// Open a named span carrying key/value metadata.
    pub fn span_begin_args(&mut self, name: impl Into<String>, args: Vec<(String, String)>) {
        self.events.push(TimelineEvent::SpanBegin { name: name.into(), args });
    }

    /// Close the innermost open span with this name.
    pub fn span_end(&mut self, name: impl Into<String>) {
        self.events.push(TimelineEvent::SpanEnd { name: name.into() });
    }

    /// All recorded events, in order.
    #[must_use]
    pub fn events(&self) -> &[TimelineEvent] {
        &self.events
    }

    /// Total modeled device time (kernels + transfers), seconds. The paper's
    /// speed-ups "incorporate all the memory transfers between the host and
    /// the device", so this is the number the benches report.
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.events.iter().map(|e| e.seconds()).sum()
    }

    /// Modeled seconds spent in kernels only.
    #[must_use]
    pub fn kernel_seconds(&self) -> f64 {
        self.events
            .iter()
            .filter(|e| matches!(e, TimelineEvent::Kernel { .. }))
            .map(|e| e.seconds())
            .sum()
    }

    /// Modeled seconds spent in transfers only.
    #[must_use]
    pub fn transfer_seconds(&self) -> f64 {
        self.events
            .iter()
            .filter(|e| matches!(e, TimelineEvent::Transfer { .. }))
            .map(|e| e.seconds())
            .sum()
    }

    /// Number of kernel launches recorded.
    #[must_use]
    pub fn kernel_launches(&self) -> usize {
        self.events.iter().filter(|e| matches!(e, TimelineEvent::Kernel { .. })).count()
    }

    /// Drop all events (start a new measurement window).
    pub fn reset(&mut self) {
        self.events.clear();
    }

    /// Per-kernel-name summary table (launch count, total modeled ms),
    /// rendered as text.
    #[must_use]
    pub fn summary(&self) -> String {
        use std::collections::BTreeMap;
        let mut per_kernel: BTreeMap<&str, (usize, f64)> = BTreeMap::new();
        let mut transfers = (0usize, 0usize, 0.0f64);
        for e in &self.events {
            match e {
                TimelineEvent::Kernel { name, seconds, .. } => {
                    let entry = per_kernel.entry(name).or_default();
                    entry.0 += 1;
                    entry.1 += seconds;
                }
                TimelineEvent::Transfer { bytes, seconds, .. } => {
                    transfers.0 += 1;
                    transfers.1 += bytes;
                    transfers.2 += seconds;
                }
                TimelineEvent::SpanBegin { .. } | TimelineEvent::SpanEnd { .. } => {}
            }
        }
        // Name column width follows the data, so names of any length stay
        // aligned with the header and with each other.
        let name_w = per_kernel
            .keys()
            .map(|n| n.len())
            .chain(std::iter::once("kernel".len()))
            .max()
            .expect("iterator is never empty")
            + 2;
        let mut out = String::new();
        writeln!(out, "{:<name_w$}{:>8}   {:>10}", "kernel", "launches", "modeled-ms")
            .expect("writing to String cannot fail");
        for (name, (count, secs)) in &per_kernel {
            writeln!(out, "{name:<name_w$}{count:>8}   {:>10.3}", secs * 1e3)
                .expect("writing to String cannot fail");
        }
        writeln!(
            out,
            "transfers: {} copies, {} bytes, {:.3} ms",
            transfers.0,
            transfers.1,
            transfers.2 * 1e3
        )
        .expect("writing to String cannot fail");
        writeln!(out, "total modeled time: {:.3} ms", self.total_seconds() * 1e3)
            .expect("writing to String cannot fail");
        out
    }
}

/// Short label for a transfer direction, used both as a metric label value
/// and a trace-event name (`h2d` / `d2h`, the CUDA memcpy shorthand).
#[must_use]
pub fn transfer_dir_label(dir: TransferDir) -> &'static str {
    match dir {
        TransferDir::HostToDevice => "h2d",
        TransferDir::DeviceToHost => "d2h",
    }
}

/// Fold a profiler timeline into a metrics registry under the `sim_`
/// namespace: per-kernel-name launch counters and modeled-duration
/// histograms, plus per-direction transfer counters/bytes/durations.
///
/// Modeled durations are timing-*independent* (they come from the analytic
/// performance model, not the wall clock), so everything this function
/// writes is reproducible across runs of the same workload — including the
/// histograms.
pub fn observe_timeline(registry: &mut MetricsRegistry, events: &[TimelineEvent]) {
    for e in events {
        match e {
            TimelineEvent::Kernel { name, seconds, .. } => {
                registry.inc("sim_kernel_launches_total", &[("kernel", name)], 1);
                registry.observe(
                    "sim_kernel_seconds",
                    &[("kernel", name)],
                    *seconds,
                    modeled_seconds_buckets(),
                );
            }
            TimelineEvent::Transfer { dir, bytes, seconds } => {
                let dir = transfer_dir_label(*dir);
                registry.inc("sim_transfers_total", &[("dir", dir)], 1);
                registry.inc("sim_transfer_bytes_total", &[("dir", dir)], *bytes as u64);
                registry.observe(
                    "sim_transfer_seconds",
                    &[("dir", dir)],
                    *seconds,
                    modeled_seconds_buckets(),
                );
            }
            TimelineEvent::SpanBegin { .. } | TimelineEvent::SpanEnd { .. } => {}
        }
    }
}

/// Convert a profiler timeline into Chrome trace events on track
/// `(pid, tid)`, starting at `start_us` on the modeled clock. Kernels and
/// transfers become complete (`X`) events laid end to end; spans become
/// `B`/`E` markers nesting around them. Returns the events and the clock
/// position after the last one, so successive windows (e.g. one per request
/// on the same device) can be chained onto one track.
#[must_use]
pub fn timeline_trace_events(
    events: &[TimelineEvent],
    pid: u32,
    tid: u32,
    start_us: f64,
) -> (Vec<TraceEvent>, f64) {
    let mut out = Vec::with_capacity(events.len());
    let mut clock = start_us;
    for e in events {
        match e {
            TimelineEvent::Kernel { name, config, seconds, .. } => {
                let dur = seconds * 1e6;
                out.push(
                    TraceEvent::complete(name, "kernel", pid, tid, clock, dur)
                        .with_arg("grid", config.grid.x)
                        .with_arg("block", config.block.x),
                );
                clock += dur;
            }
            TimelineEvent::Transfer { dir, bytes, seconds } => {
                let dur = seconds * 1e6;
                out.push(
                    TraceEvent::complete(transfer_dir_label(*dir), "transfer", pid, tid, clock, dur)
                        .with_arg("bytes", bytes),
                );
                clock += dur;
            }
            TimelineEvent::SpanBegin { name, args } => {
                let mut ev = TraceEvent::begin(name, "span", pid, tid, clock);
                for (k, v) in args {
                    ev = ev.with_arg(k, v);
                }
                out.push(ev);
            }
            TimelineEvent::SpanEnd { name } => {
                out.push(TraceEvent::end(name, "span", pid, tid, clock));
            }
        }
    }
    (out, clock)
}

/// Cross-run aggregation of profiler timelines — the per-device utilization
/// view a multi-run consumer (device pool, campaign runner) needs, instead
/// of the raw event lists of each individual [`Profiler`] window.
///
/// `busy_seconds` accumulates modeled device-busy time across every absorbed
/// window; dividing by a wall-clock measurement window gives the device's
/// utilization (a modeled-busy / wall-observed ratio, the same shape
/// `nvidia-smi` reports).
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct ProfilerAggregate {
    /// Total modeled busy seconds (kernels + transfers) across all windows.
    pub busy_seconds: f64,
    /// Modeled kernel seconds across all windows.
    pub kernel_seconds: f64,
    /// Modeled transfer seconds across all windows.
    pub transfer_seconds: f64,
    /// Kernel launches across all windows.
    pub kernel_launches: usize,
    /// Profiler windows absorbed.
    pub windows: usize,
}

impl ProfilerAggregate {
    /// Empty aggregate.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one profiler window into the aggregate.
    pub fn absorb(&mut self, p: &Profiler) {
        self.record(p.total_seconds(), p.kernel_seconds(), p.transfer_seconds(), p.kernel_launches());
    }

    /// Fold already-extracted window totals into the aggregate (for
    /// consumers that only kept the numbers, not the `Profiler`).
    pub fn record(&mut self, total: f64, kernel: f64, transfer: f64, launches: usize) {
        self.busy_seconds += total;
        self.kernel_seconds += kernel;
        self.transfer_seconds += transfer;
        self.kernel_launches += launches;
        self.windows += 1;
    }

    /// Busy-seconds / wall-seconds utilization over a measurement window.
    /// Returns 0 for an empty or unstarted window.
    #[must_use]
    pub fn utilization(&self, wall_seconds: f64) -> f64 {
        if wall_seconds <= 0.0 {
            0.0
        } else {
            self.busy_seconds / wall_seconds
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel_event(name: &str, secs: f64) -> TimelineEvent {
        TimelineEvent::Kernel {
            name: name.into(),
            config: LaunchConfig::linear(1, 32),
            seconds: secs,
            total_cost: CostCounter::default(),
        }
    }

    #[test]
    fn totals_split_by_kind() {
        let mut p = Profiler::new();
        p.push(kernel_event("fitness", 0.002));
        p.push(TimelineEvent::Transfer { dir: TransferDir::HostToDevice, bytes: 64, seconds: 0.001 });
        p.push(kernel_event("reduce", 0.003));
        assert!((p.total_seconds() - 0.006).abs() < 1e-12);
        assert!((p.kernel_seconds() - 0.005).abs() < 1e-12);
        assert!((p.transfer_seconds() - 0.001).abs() < 1e-12);
        assert_eq!(p.kernel_launches(), 2);
        assert_eq!(p.events().len(), 3);
    }

    #[test]
    fn summary_mentions_each_kernel() {
        let mut p = Profiler::new();
        p.push(kernel_event("fitness", 0.002));
        p.push(kernel_event("fitness", 0.002));
        p.push(kernel_event("perturb", 0.001));
        let s = p.summary();
        assert!(s.contains("fitness"));
        assert!(s.contains("perturb"));
        assert!(s.contains("total modeled time"));
    }

    #[test]
    fn summary_aligns_long_kernel_names() {
        // Regression: names at or past the old fixed 28-column width used to
        // overflow their column and shear the table.
        let long = "fitness_candidate_with_tabu_memory_pass"; // 39 chars
        assert!(long.len() >= 28);
        let mut p = Profiler::new();
        p.push(kernel_event(long, 0.002));
        p.push(kernel_event("reduce", 0.001));
        let s = p.summary();
        let lines: Vec<&str> = s.lines().collect();
        // Header + both kernel rows share one fixed-width layout, so they
        // render to the same length; the old fixed 28-column format made the
        // long row overflow and come out wider than the header.
        assert_eq!(lines[0].len(), lines[1].len(), "header vs first row in:\n{s}");
        assert_eq!(lines[0].len(), lines[2].len(), "header vs second row in:\n{s}");
        // And the name itself is intact in its row.
        assert!(lines[1].starts_with(long) || lines[2].starts_with(long));
        // The short name's row is padded out to the long name's column.
        let short_row = lines.iter().find(|l| l.starts_with("reduce")).unwrap();
        assert!(short_row.len() > long.len(), "short row padded to the widened column");
    }

    #[test]
    fn spans_are_zero_cost_annotations() {
        let mut p = Profiler::new();
        p.span_begin("sa-generation");
        p.push(kernel_event("perturb", 0.002));
        p.span_end("sa-generation");
        assert_eq!(p.events().len(), 3);
        assert!((p.total_seconds() - 0.002).abs() < 1e-12, "spans add no modeled time");
        assert_eq!(p.kernel_launches(), 1);
        assert!(p.summary().contains("perturb"), "spans don't disturb the summary");
    }

    #[test]
    fn span_args_render_into_the_trace_sink() {
        let mut p = Profiler::new();
        p.span_begin_args(
            "sa-generation",
            vec![("gen".into(), "7".into()), ("temperature".into(), "35.2".into())],
        );
        p.push(kernel_event("perturb", 0.001));
        p.span_end("sa-generation");
        let (evs, _) = timeline_trace_events(p.events(), 0, 0, 0.0);
        assert_eq!(evs[0].ph, 'B');
        assert_eq!(evs[0].args, vec![
            ("gen".to_string(), "7".to_string()),
            ("temperature".to_string(), "35.2".to_string()),
        ]);
        let json = evs[0].to_json();
        assert!(json.contains("\"gen\":\"7\""), "{json}");
        assert!(json.contains("\"temperature\":\"35.2\""), "{json}");
    }

    #[test]
    fn observe_timeline_populates_sim_metrics() {
        let mut p = Profiler::new();
        p.push(kernel_event("fitness", 0.002));
        p.push(kernel_event("fitness", 0.004));
        p.push(TimelineEvent::Transfer {
            dir: TransferDir::HostToDevice,
            bytes: 256,
            seconds: 0.001,
        });
        let mut reg = MetricsRegistry::new();
        observe_timeline(&mut reg, p.events());
        assert_eq!(reg.counter("sim_kernel_launches_total", &[("kernel", "fitness")]), 2);
        assert_eq!(reg.counter("sim_transfers_total", &[("dir", "h2d")]), 1);
        assert_eq!(reg.counter("sim_transfer_bytes_total", &[("dir", "h2d")]), 256);
        let h = reg.histogram("sim_kernel_seconds", &[("kernel", "fitness")]).unwrap();
        assert_eq!(h.count(), 2);
        assert!((h.sum() - 0.006).abs() < 1e-12);
    }

    #[test]
    fn trace_events_lay_work_end_to_end_on_the_modeled_clock() {
        let mut p = Profiler::new();
        p.span_begin("gen");
        p.push(kernel_event("perturb", 0.002));
        p.push(TimelineEvent::Transfer {
            dir: TransferDir::DeviceToHost,
            bytes: 64,
            seconds: 0.001,
        });
        p.span_end("gen");
        let (evs, end_us) = timeline_trace_events(p.events(), 0, 3, 100.0);
        assert_eq!(evs.len(), 4);
        assert!((end_us - (100.0 + 3000.0)).abs() < 1e-9, "clock advanced by 3 modeled ms");
        assert_eq!(evs[0].ph, 'B');
        assert_eq!(evs[1].name, "perturb");
        assert_eq!(evs[1].ts_us, 100.0);
        assert_eq!(evs[1].dur_us, Some(2000.0));
        assert_eq!(evs[2].name, "d2h");
        assert_eq!(evs[2].ts_us, 2100.0);
        assert_eq!(evs[3].ph, 'E');
        assert_eq!(evs[3].ts_us, 3100.0, "span closes after the work it wraps");
        assert!(evs.iter().all(|e| e.tid == 3), "all events stay on the device track");
    }

    #[test]
    fn reset_clears() {
        let mut p = Profiler::new();
        p.push(kernel_event("k", 1.0));
        p.reset();
        assert_eq!(p.total_seconds(), 0.0);
        assert!(p.events().is_empty());
    }

    #[test]
    fn aggregate_accumulates_across_windows() {
        let mut window_a = Profiler::new();
        window_a.push(kernel_event("fitness", 0.002));
        window_a.push(TimelineEvent::Transfer {
            dir: TransferDir::HostToDevice,
            bytes: 64,
            seconds: 0.001,
        });
        let mut window_b = Profiler::new();
        window_b.push(kernel_event("reduce", 0.003));

        let mut agg = ProfilerAggregate::new();
        agg.absorb(&window_a);
        agg.absorb(&window_b);
        assert!((agg.busy_seconds - 0.006).abs() < 1e-12);
        assert!((agg.kernel_seconds - 0.005).abs() < 1e-12);
        assert!((agg.transfer_seconds - 0.001).abs() < 1e-12);
        assert_eq!(agg.kernel_launches, 2);
        assert_eq!(agg.windows, 2);
    }

    #[test]
    fn utilization_is_busy_over_wall() {
        let mut agg = ProfilerAggregate::new();
        agg.record(0.5, 0.4, 0.1, 10);
        assert!((agg.utilization(2.0) - 0.25).abs() < 1e-12);
        assert_eq!(agg.utilization(0.0), 0.0, "degenerate window reports 0, not NaN");
        assert_eq!(ProfilerAggregate::new().utilization(1.0), 0.0);
    }
}
