//! Reduction utilities: the paper's fourth kernel finds the ensemble-best
//! solution with an atomic minimization; this module provides that kernel
//! plus a host-side helper for (value, index) argmin reductions.

use crate::backend::ExecBackend;
use crate::engine::{DeviceCtx, Kernel, LaunchError};
use crate::grid::LaunchConfig;
use crate::memory::Buf;

/// Kernel: `atomicMin(out[0], values[gid])` over all threads — the paper's
/// reduction kernel ("the minimal value among all the threads is calculated
/// by performing an atomic minimization function").
pub struct AtomicMinKernel {
    /// Fitness values, one per thread.
    pub values: Buf<i64>,
    /// Single-element output; must be pre-seeded with `i64::MAX`.
    pub out: Buf<i64>,
}

impl Kernel for AtomicMinKernel {
    type Shared = ();
    type ThreadState = ();

    fn name(&self) -> &str {
        "reduce_atomic_min"
    }

    fn make_shared(&self, _block_dim: usize) {}

    fn phase<C: DeviceCtx>(&self, _p: usize, ctx: &mut C, _s: &mut (), _t: &mut ()) {
        let gid = ctx.global_id();
        if gid < self.values.len() {
            let v = ctx.read(self.values, gid);
            ctx.atomic_min_i64(self.out, 0, v);
        }
    }
}

/// Kernel: argmin via `atomicMin` on a packed `(value << 20 | index)` key.
///
/// Packing keeps the reduction a single atomic (as on real hardware, where a
/// 64-bit `atomicMin` over value-major packed keys is the standard argmin
/// trick). Requires `index < 2^20` threads and `|value| < 2^42`; both hold
/// for every experiment in the paper (≤ 4096 threads, objectives ≤ 10⁹).
pub struct AtomicArgminKernel {
    /// Fitness values, one per thread.
    pub values: Buf<i64>,
    /// Single-element packed output; pre-seed with `i64::MAX`.
    pub out: Buf<i64>,
}

/// Bits reserved for the index in the packed argmin key.
pub const ARGMIN_INDEX_BITS: u32 = 20;

/// Exclusive upper bound on the thread index a packed argmin key can carry.
pub const ARGMIN_MAX_INDEX: usize = 1 << ARGMIN_INDEX_BITS;

/// Exclusive upper bound on `|value|` for a packed argmin key.
pub const ARGMIN_MAX_ABS_VALUE: i64 = 1 << (62 - ARGMIN_INDEX_BITS);

/// Validate that an argmin reduction over `index_count` slots whose values
/// can reach `max_abs_value` in magnitude fits the packed-key encoding.
///
/// Call this at **pipeline setup** with a worst-case objective bound: a
/// value ≥ 2^42 or an ensemble ≥ 2^20 would silently truncate into the
/// neighboring field and crown the wrong winner, so the pack limits must be
/// rejected loudly before any kernel runs. (`max_abs_value` is an `i128` so
/// callers can pass an over-approximated bound computed without overflow.)
pub fn argmin_domain_check(max_abs_value: i128, index_count: usize) -> Result<(), String> {
    if index_count > ARGMIN_MAX_INDEX {
        return Err(format!(
            "argmin ensemble too large for the packed reduction: {index_count} slots exceed \
             the {ARGMIN_INDEX_BITS}-bit index field (max {ARGMIN_MAX_INDEX})"
        ));
    }
    if max_abs_value >= ARGMIN_MAX_ABS_VALUE as i128 {
        return Err(format!(
            "argmin objective bound too large for the packed reduction: |value| can reach \
             {max_abs_value}, which exceeds the {}-bit value field (max {})",
            62 - ARGMIN_INDEX_BITS,
            ARGMIN_MAX_ABS_VALUE - 1
        ));
    }
    Ok(())
}

/// Pack a `(value, index)` pair into an order-preserving i64 key.
///
/// # Panics
/// Panics when the pair exceeds the field widths — an out-of-range pack
/// would silently corrupt the argmin, so it is rejected even in release
/// builds. Pipelines validate their whole domain up front with
/// [`argmin_domain_check`] and never reach this panic.
pub fn pack_argmin(value: i64, index: usize) -> i64 {
    assert!(
        index < ARGMIN_MAX_INDEX,
        "pack_argmin index {index} exceeds the {ARGMIN_INDEX_BITS}-bit field \
         (max {ARGMIN_MAX_INDEX})"
    );
    assert!(
        value.unsigned_abs() < ARGMIN_MAX_ABS_VALUE as u64,
        "pack_argmin value {value} exceeds the {}-bit field (|value| must stay below {})",
        62 - ARGMIN_INDEX_BITS,
        ARGMIN_MAX_ABS_VALUE
    );
    (value << ARGMIN_INDEX_BITS) | index as i64
}

/// Invert [`pack_argmin`].
pub fn unpack_argmin(key: i64) -> (i64, usize) {
    (key >> ARGMIN_INDEX_BITS, (key & ((1 << ARGMIN_INDEX_BITS) - 1)) as usize)
}

impl Kernel for AtomicArgminKernel {
    type Shared = ();
    type ThreadState = ();

    fn name(&self) -> &str {
        "reduce_atomic_argmin"
    }

    fn make_shared(&self, _block_dim: usize) {}

    fn phase<C: DeviceCtx>(&self, _p: usize, ctx: &mut C, _s: &mut (), _t: &mut ()) {
        let gid = ctx.global_id();
        if gid < self.values.len() {
            let mut v = ctx.read(self.values, gid);
            if ctx.fault_injection_active() {
                // A flipped read can exceed the packable range; saturate so
                // the key stays order-preserving (a corrupted extreme loses
                // the argmin, and recovery layers re-validate the winner).
                const CAP: i64 = (1 << (62 - ARGMIN_INDEX_BITS)) - 1;
                v = v.clamp(-CAP, CAP);
            }
            ctx.charge_alu(2); // shift + or
            ctx.atomic_min_i64(self.out, 0, pack_argmin(v, gid));
        }
    }
}

/// Kernel: independent packed argmin reductions over fixed-length segments
/// of `values` — the fused-launch form of [`AtomicArgminKernel`] used when
/// several requests share one grid (each request owns one contiguous
/// segment). The packed index is the **segment-local** thread index, so a
/// fused reduction unpacks exactly like the per-request reduction it
/// replaces.
pub struct SegmentedArgminKernel {
    /// Fitness values, one per thread, segment-major.
    pub values: Buf<i64>,
    /// One packed output slot per segment; pre-seed every slot with
    /// `i64::MAX`.
    pub out: Buf<i64>,
    /// Threads per segment (`values.len()` must be a multiple of it).
    pub segment: usize,
}

impl Kernel for SegmentedArgminKernel {
    type Shared = ();
    type ThreadState = ();

    fn name(&self) -> &str {
        "reduce_segmented_argmin"
    }

    fn make_shared(&self, _block_dim: usize) {}

    fn phase<C: DeviceCtx>(&self, _p: usize, ctx: &mut C, _s: &mut (), _t: &mut ()) {
        let gid = ctx.global_id();
        if gid < self.values.len() {
            let mut v = ctx.read(self.values, gid);
            if ctx.fault_injection_active() {
                const CAP: i64 = (1 << (62 - ARGMIN_INDEX_BITS)) - 1;
                v = v.clamp(-CAP, CAP);
            }
            ctx.charge_alu(4); // div/mod for the segment split + shift + or
            let seg = gid / self.segment;
            let local = gid % self.segment;
            ctx.atomic_min_i64(self.out, seg, pack_argmin(v, local));
        }
    }
}

/// Host-side convenience: run the argmin reduction over `values` and return
/// `(min value, index)`. Allocates and seeds the output buffer. Generic
/// over the execution backend.
pub fn device_argmin<B: ExecBackend>(
    gpu: &mut B,
    values: Buf<i64>,
    block_size: usize,
) -> Result<(i64, usize), LaunchError> {
    let out = gpu.alloc::<i64>(1);
    gpu.h2d(out, &[i64::MAX]);
    let kernel = AtomicArgminKernel { values, out };
    gpu.launch_kernel(&kernel, LaunchConfig::cover(values.len(), block_size), &[])?;
    let key = gpu.d2h(out)[0];
    Ok(unpack_argmin(key))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use crate::engine::Gpu;

    #[test]
    fn pack_preserves_order() {
        // Smaller value always wins regardless of index.
        assert!(pack_argmin(5, 999) < pack_argmin(6, 0));
        // Ties break toward the smaller index (deterministic).
        assert!(pack_argmin(5, 3) < pack_argmin(5, 7));
        // Negative values order correctly.
        assert!(pack_argmin(-10, 0) < pack_argmin(-9, 0));
        assert!(pack_argmin(-10, 5) < pack_argmin(0, 0));
    }

    #[test]
    fn unpack_inverts_pack() {
        for (v, i) in [(0i64, 0usize), (123, 45), (-7, 1023), (1 << 30, 99)] {
            assert_eq!(unpack_argmin(pack_argmin(v, i)), (v, i));
        }
    }

    #[test]
    fn domain_check_accepts_paper_scale_and_rejects_overflow() {
        // Every experiment in the paper fits comfortably.
        assert!(argmin_domain_check(1_000_000_000, 768).is_ok());
        assert!(argmin_domain_check((ARGMIN_MAX_ABS_VALUE - 1) as i128, ARGMIN_MAX_INDEX).is_ok());
        // One past either field overflows with a clear message.
        let too_many = argmin_domain_check(0, ARGMIN_MAX_INDEX + 1).unwrap_err();
        assert!(too_many.contains("ensemble too large"), "{too_many}");
        let too_big = argmin_domain_check(ARGMIN_MAX_ABS_VALUE as i128, 1).unwrap_err();
        assert!(too_big.contains("objective bound too large"), "{too_big}");
    }

    #[test]
    #[should_panic(expected = "pack_argmin index")]
    fn pack_rejects_oversized_index_in_release_builds_too() {
        let _ = pack_argmin(0, ARGMIN_MAX_INDEX);
    }

    #[test]
    #[should_panic(expected = "pack_argmin value")]
    fn pack_rejects_oversized_value_in_release_builds_too() {
        let _ = pack_argmin(ARGMIN_MAX_ABS_VALUE, 0);
    }

    #[test]
    fn atomic_min_kernel_reduces() {
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        let values = gpu.alloc::<i64>(100);
        let host: Vec<i64> = (0..100).map(|i| ((i * 37) % 91) as i64 + 5).collect();
        gpu.h2d(values, &host);
        let out = gpu.alloc::<i64>(1);
        gpu.h2d(out, &[i64::MAX]);
        gpu.launch(
            &AtomicMinKernel { values, out },
            LaunchConfig::cover(100, 32),
            &[],
        )
        .unwrap();
        assert_eq!(gpu.d2h(out)[0], *host.iter().min().unwrap());
    }

    #[test]
    fn device_argmin_matches_host() {
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        let values = gpu.alloc::<i64>(768);
        let host: Vec<i64> = (0..768).map(|i| (((i * 7919) % 4093) as i64) - 50).collect();
        gpu.h2d(values, &host);
        let (v, idx) = device_argmin(&mut gpu, values, 192).unwrap();
        let host_min = *host.iter().min().unwrap();
        assert_eq!(v, host_min);
        assert_eq!(host[idx], host_min);
    }

    #[test]
    fn segmented_argmin_matches_per_segment_host_reduction() {
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        gpu.set_race_detection(true);
        let seg = 64usize;
        let k = 3usize;
        let values = gpu.alloc::<i64>(seg * k);
        let host: Vec<i64> =
            (0..seg * k).map(|i| (((i * 7919) % 997) as i64) + 3 * (i / seg) as i64).collect();
        gpu.h2d(values, &host);
        let out = gpu.alloc::<i64>(k);
        gpu.h2d(out, &[i64::MAX; 3]);
        gpu.launch(
            &SegmentedArgminKernel { values, out, segment: seg },
            LaunchConfig::cover(seg * k, 32),
            &[],
        )
        .unwrap();
        for (r, key) in gpu.d2h(out).into_iter().enumerate() {
            let (v, local) = unpack_argmin(key);
            let slice = &host[r * seg..(r + 1) * seg];
            assert_eq!(v, *slice.iter().min().unwrap(), "segment {r} value");
            assert_eq!(slice[local], v, "segment {r} index is segment-local");
        }
    }

    #[test]
    fn argmin_with_race_detection_is_clean() {
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        gpu.set_race_detection(true);
        let values = gpu.alloc::<i64>(64);
        gpu.h2d(values, &(0..64).map(|i| 100 - i as i64).collect::<Vec<_>>());
        let (v, idx) = device_argmin(&mut gpu, values, 32).unwrap();
        assert_eq!(v, 37);
        assert_eq!(idx, 63);
    }
}
