//! Grid/block geometry and launch configurations.

use crate::device::DeviceSpec;
use std::fmt;

/// A CUDA `dim3`: extents in x, y, z (all ≥ 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dim3 {
    pub x: usize,
    pub y: usize,
    pub z: usize,
}

impl Dim3 {
    /// One-dimensional extent `(n, 1, 1)` — the configuration the paper
    /// uses for both grid and blocks ("linear configurations … to avoid
    /// race-conditions").
    pub fn linear(n: usize) -> Self {
        Dim3 { x: n, y: 1, z: 1 }
    }

    /// Total element count `x·y·z`.
    pub fn count(&self) -> usize {
        self.x * self.y * self.z
    }

    /// Whether the extent is purely one-dimensional.
    pub fn is_linear(&self) -> bool {
        self.y == 1 && self.z == 1
    }
}

impl fmt::Display for Dim3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

/// A kernel launch configuration `<<<grid, block>>>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LaunchConfig {
    pub grid: Dim3,
    pub block: Dim3,
}

impl LaunchConfig {
    /// Linear launch: `blocks` blocks of `threads_per_block` threads — the
    /// paper's `G = (⌈N/N_B⌉, 1, 1)`, `B = (N_B, 1, 1)`.
    pub fn linear(blocks: usize, threads_per_block: usize) -> Self {
        LaunchConfig { grid: Dim3::linear(blocks), block: Dim3::linear(threads_per_block) }
    }

    /// Linear launch covering an ensemble of `total` threads with the given
    /// block size: grid = ⌈total / block⌉.
    pub fn cover(total: usize, threads_per_block: usize) -> Self {
        let blocks = total.div_ceil(threads_per_block).max(1);
        Self::linear(blocks, threads_per_block)
    }

    /// Total number of threads in the launch.
    pub fn total_threads(&self) -> usize {
        self.grid.count() * self.block.count()
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.grid.count()
    }

    /// Threads per block.
    pub fn block_size(&self) -> usize {
        self.block.count()
    }

    /// Warps per block on the given device (rounded up).
    pub fn warps_per_block(&self, spec: &DeviceSpec) -> usize {
        self.block_size().div_ceil(spec.warp_size)
    }

    /// Check hardware limits, returning a description of the violation.
    pub fn validate(&self, spec: &DeviceSpec, shared_bytes: usize) -> Result<(), String> {
        if self.grid.count() == 0 || self.block.count() == 0 {
            return Err("grid and block extents must be >= 1".into());
        }
        if self.block.count() > spec.max_threads_per_block {
            return Err(format!(
                "block size {} exceeds device limit {}",
                self.block.count(),
                spec.max_threads_per_block
            ));
        }
        if self.warps_per_block(spec) > spec.max_warps_per_sm {
            return Err(format!(
                "block needs {} warps, SM holds at most {}",
                self.warps_per_block(spec),
                spec.max_warps_per_sm
            ));
        }
        if shared_bytes > spec.shared_mem_per_block {
            return Err(format!(
                "kernel requests {shared_bytes} B shared memory, device offers {}",
                spec.shared_mem_per_block
            ));
        }
        Ok(())
    }
}

impl fmt::Display for LaunchConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<<<{}, {}>>>", self.grid, self.block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_counts() {
        let c = LaunchConfig::linear(4, 192); // the paper's configuration
        assert_eq!(c.total_threads(), 768);
        assert_eq!(c.num_blocks(), 4);
        assert_eq!(c.block_size(), 192);
        assert!(c.grid.is_linear() && c.block.is_linear());
        assert_eq!(c.warps_per_block(&DeviceSpec::gt560m()), 6);
    }

    #[test]
    fn cover_rounds_up() {
        assert_eq!(LaunchConfig::cover(768, 192).num_blocks(), 4);
        assert_eq!(LaunchConfig::cover(769, 192).num_blocks(), 5);
        assert_eq!(LaunchConfig::cover(1, 192).num_blocks(), 1);
        assert_eq!(LaunchConfig::cover(0, 192).num_blocks(), 1);
    }

    #[test]
    fn validate_enforces_block_limit() {
        let spec = DeviceSpec::gt560m();
        assert!(LaunchConfig::linear(1, 1024).validate(&spec, 0).is_ok());
        let err = LaunchConfig::linear(1, 1025).validate(&spec, 0).unwrap_err();
        assert!(err.contains("block size"));
    }

    #[test]
    fn validate_enforces_shared_limit() {
        let spec = DeviceSpec::gt560m();
        let err = LaunchConfig::linear(1, 64).validate(&spec, 1 << 20).unwrap_err();
        assert!(err.contains("shared memory"));
    }

    #[test]
    fn validate_rejects_empty() {
        let spec = DeviceSpec::gt560m();
        let cfg = LaunchConfig { grid: Dim3 { x: 0, y: 1, z: 1 }, block: Dim3::linear(32) };
        assert!(cfg.validate(&spec, 0).is_err());
    }

    #[test]
    fn display_formats_cuda_style() {
        let c = LaunchConfig::linear(4, 192);
        assert_eq!(c.to_string(), "<<<(4, 1, 1), (192, 1, 1)>>>");
    }
}
