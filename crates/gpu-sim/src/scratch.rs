//! Reusable per-slot scratch storage for kernels.
//!
//! Kernel `ThreadState` used to be rebuilt via `Default` on every launch,
//! which meant every generation of a pipeline re-allocated its working
//! vectors (`seq`/`p`/`m`/`marks` in the fitness kernel, permutation rows in
//! the perturb/update kernels). A [`ScratchArena`] keeps one slot per
//! simulated thread (or per block) alive across launches so the vectors are
//! resized once and then reused — a generation performs zero heap
//! allocation in steady state.
//!
//! The arena is shared by the host threads of the parallel block dispatcher
//! (`&self` access from many threads), so each slot carries an occupancy
//! flag: the engine guarantees a given simulated thread (and block) is
//! executed by exactly one host thread, and the flag turns any violation of
//! that guarantee into a panic instead of silent data corruption.

use std::cell::UnsafeCell;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

struct Slot<T> {
    busy: AtomicBool,
    value: UnsafeCell<T>,
}

/// A fixed-size arena of independently borrowable scratch slots, indexed by
/// simulated global thread id or block index. See the module docs.
pub struct ScratchArena<T> {
    slots: Box<[Slot<T>]>,
}

// SAFETY: distinct slots are distinct memory, and access to one slot's
// interior is serialized by its `busy` flag (acquire on entry, release on
// exit), so `&ScratchArena<T>` can be shared across threads whenever the
// payload itself can move between them.
unsafe impl<T: Send> Sync for ScratchArena<T> {}

impl<T: Default> ScratchArena<T> {
    /// An arena with `len` default-initialized slots.
    pub fn new(len: usize) -> Self {
        ScratchArena { slots: (0..len).map(|_| Slot { busy: AtomicBool::new(false), value: UnsafeCell::new(T::default()) }).collect() }
    }
}

impl<T> ScratchArena<T> {
    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the arena has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Run `f` with exclusive access to slot `idx`. Slot contents persist
    /// across calls (that is the point: reuse, not reinitialization), so
    /// `f` must not assume a fresh value. Panics if the slot is already
    /// borrowed — which would mean two host threads are executing the same
    /// simulated thread, a dispatcher bug.
    pub fn with_slot<R>(&self, idx: usize, f: impl FnOnce(&mut T) -> R) -> R {
        let slot = &self.slots[idx];
        assert!(
            !slot.busy.swap(true, Ordering::Acquire),
            "scratch slot {idx} borrowed concurrently (one simulated thread on two host threads)"
        );
        struct Release<'a>(&'a AtomicBool);
        impl Drop for Release<'_> {
            fn drop(&mut self) {
                self.0.store(false, Ordering::Release);
            }
        }
        let _release = Release(&slot.busy);
        // SAFETY: the `busy` flag grants exclusive access to this slot until
        // `_release` drops, so the mutable reference cannot alias.
        f(unsafe { &mut *slot.value.get() })
    }
}

impl<T> fmt::Debug for ScratchArena<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScratchArena").field("slots", &self.slots.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_persist_across_borrows() {
        let arena: ScratchArena<Vec<u32>> = ScratchArena::new(3);
        arena.with_slot(1, |v| v.extend_from_slice(&[1, 2, 3]));
        let cap = arena.with_slot(1, |v| {
            assert_eq!(v, &[1, 2, 3]);
            v.clear();
            v.capacity()
        });
        assert!(cap >= 3, "clearing keeps the allocation");
        arena.with_slot(0, |v| assert!(v.is_empty()));
        assert_eq!(arena.len(), 3);
        assert!(!arena.is_empty());
    }

    #[test]
    fn concurrent_disjoint_slots_are_independent() {
        let arena: ScratchArena<u64> = ScratchArena::new(8);
        std::thread::scope(|s| {
            for t in 0..4usize {
                let arena = &arena;
                s.spawn(move || {
                    for _ in 0..1000 {
                        arena.with_slot(t, |v| *v += 1);
                        arena.with_slot(t + 4, |v| *v += 2);
                    }
                });
            }
        });
        for t in 0..4 {
            assert_eq!(arena.with_slot(t, |v| *v), 1000);
            assert_eq!(arena.with_slot(t + 4, |v| *v), 2000);
        }
    }

    #[test]
    #[should_panic(expected = "borrowed concurrently")]
    fn reentrant_borrow_of_one_slot_panics() {
        let arena: ScratchArena<u64> = ScratchArena::new(1);
        arena.with_slot(0, |_| {
            arena.with_slot(0, |_| {});
        });
    }

    #[test]
    fn slot_is_released_even_when_the_closure_panics() {
        let arena: ScratchArena<u64> = ScratchArena::new(1);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            arena.with_slot(0, |_| panic!("boom"));
        }));
        assert!(caught.is_err());
        arena.with_slot(0, |v| *v = 7);
        assert_eq!(arena.with_slot(0, |v| *v), 7);
    }
}
