//! Cost counting and the analytic kernel-timing model.
//!
//! Every simulated thread accumulates a [`CostCounter`]. The engine folds
//! thread counters into warps (lockstep SIMT: a warp pays the **maximum** of
//! its lanes for each class, which also charges divergence — an idle lane
//! still occupies the warp slot), warps into blocks, and blocks into SMs.
//!
//! Timing rule (documented in `DESIGN.md` and `lib.rs`):
//!
//! ```text
//! warp_cycles_compute = cpi_alu·alu + cpi_sfu·special
//!                     + cpi_shared·(shared + bank_conflicts)
//!                     + cpi_atomic·atomics
//! block_compute       = Σ warp_cycles_compute            (one issue port)
//! block_mem_cycles    = (transactions · transaction_bytes) / bytes_per_SM_cycle
//! block_cycles        = max(block_compute, block_mem_cycles)   (roofline)
//!                     + sync_cycles · (phases − 1)
//! SM_cycles           = Σ cycles of its blocks (round-robin assignment)
//! kernel_time         = launch_overhead + max_SM(SM_cycles) / clock
//! ```
//!
//! The model is deliberately simple, monotone and explainable; it produces
//! the qualitative effects the paper reports (block serialization beyond the
//! SM count, overhead-dominated small kernels, memory-bound fitness scans).

use crate::device::DeviceSpec;
use crate::grid::LaunchConfig;

/// Texture reads amortized per memory transaction (the spatial cache the
/// paper's conclusion proposes examining as future work: "utilization of
/// the texture memory of the GPU to make use of its spatial cache").
pub const TEXTURE_READS_PER_TRANSACTION: u64 = 16;

/// Per-thread execution cost counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostCounter {
    /// Warp-wide ALU/logic instructions (adds, compares, address math).
    pub alu: u64,
    /// Special-function instructions (`exp`, reciprocal, …).
    pub special: u64,
    /// Global-memory transactions issued (reads + writes, uncoalesced).
    pub global_transactions: u64,
    /// Texture-path reads (spatially cached read-only data; see
    /// [`crate::engine::ThreadCtx::read_texture`]). The memory model charges
    /// one transaction per [`TEXTURE_READS_PER_TRANSACTION`] reads.
    pub texture_reads: u64,
    /// Shared-memory accesses.
    pub shared_accesses: u64,
    /// Extra shared cycles lost to bank conflicts.
    pub bank_conflicts: u64,
    /// Atomic operations (serialized at L2).
    pub atomics: u64,
}

impl CostCounter {
    /// Lane-wise maximum — the lockstep cost of a warp whose lanes ran `a`
    /// and `b`.
    pub fn lane_max(a: &CostCounter, b: &CostCounter) -> CostCounter {
        CostCounter {
            alu: a.alu.max(b.alu),
            special: a.special.max(b.special),
            global_transactions: a.global_transactions.max(b.global_transactions),
            texture_reads: a.texture_reads.max(b.texture_reads),
            shared_accesses: a.shared_accesses.max(b.shared_accesses),
            bank_conflicts: a.bank_conflicts.max(b.bank_conflicts),
            atomics: a.atomics.max(b.atomics),
        }
    }

    /// Element-wise sum (aggregating warps into a block).
    pub fn add(&mut self, other: &CostCounter) {
        self.alu += other.alu;
        self.special += other.special;
        self.global_transactions += other.global_transactions;
        self.texture_reads += other.texture_reads;
        self.shared_accesses += other.shared_accesses;
        self.bank_conflicts += other.bank_conflicts;
        self.atomics += other.atomics;
    }

    /// Compute-side cycles of one warp under `spec`.
    pub fn compute_cycles(&self, spec: &DeviceSpec) -> f64 {
        spec.cpi_alu * self.alu as f64
            + spec.cpi_sfu * self.special as f64
            + spec.cpi_shared * (self.shared_accesses + self.bank_conflicts) as f64
            + spec.cpi_atomic * self.atomics as f64
    }

    /// Memory-side cycles of one warp/block under `spec` (texture reads are
    /// amortized through the spatial cache).
    pub fn memory_cycles(&self, spec: &DeviceSpec) -> f64 {
        let transactions = self.global_transactions as f64
            + (self.texture_reads as f64 / TEXTURE_READS_PER_TRANSACTION as f64).ceil();
        transactions * spec.transaction_bytes / spec.mem_bytes_per_sm_cycle()
    }
}

/// Modeled timing of one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelTiming {
    /// Modeled wall time of the launch, seconds (including launch overhead).
    pub seconds: f64,
    /// Cycles of the busiest SM.
    pub critical_sm_cycles: f64,
    /// Per-block modeled cycles.
    pub block_cycles: Vec<f64>,
    /// Whether blocks outnumbered SMs (serial block processing occurred —
    /// the effect the paper highlights for large ensembles).
    pub blocks_serialized: bool,
}

/// Fold per-warp block costs into the kernel timing model.
///
/// `per_block_warp_costs[b]` holds the lockstep (lane-max) cost of every
/// warp of block `b`; `phases` is the kernel's barrier count + 1.
pub fn model_kernel_time(
    spec: &DeviceSpec,
    cfg: &LaunchConfig,
    per_block_warp_costs: &[Vec<CostCounter>],
    phases: usize,
) -> KernelTiming {
    let sync = spec.sync_cycles * phases.saturating_sub(1) as f64;
    let block_cycles: Vec<f64> = per_block_warp_costs
        .iter()
        .map(|warps| {
            let mut compute = 0.0;
            let mut block_total = CostCounter::default();
            for w in warps {
                compute += w.compute_cycles(spec);
                block_total.add(w);
            }
            let mem = block_total.memory_cycles(spec);
            compute.max(mem) + sync
        })
        .collect();

    // Round-robin block → SM assignment; SMs process their blocks serially.
    let mut sm_cycles = vec![0.0f64; spec.sm_count];
    for (b, cycles) in block_cycles.iter().enumerate() {
        sm_cycles[b % spec.sm_count] += cycles;
    }
    let critical = sm_cycles.iter().cloned().fold(0.0, f64::max);
    KernelTiming {
        seconds: spec.launch_overhead + critical / spec.clock_hz,
        critical_sm_cycles: critical,
        block_cycles,
        blocks_serialized: cfg.num_blocks() > spec.sm_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn warp(alu: u64, mem: u64) -> CostCounter {
        CostCounter { alu, global_transactions: mem, ..Default::default() }
    }

    #[test]
    fn lane_max_models_lockstep() {
        let a = CostCounter { alu: 10, special: 1, ..Default::default() };
        let b = CostCounter { alu: 4, special: 7, ..Default::default() };
        let m = CostCounter::lane_max(&a, &b);
        assert_eq!(m.alu, 10);
        assert_eq!(m.special, 7);
    }

    #[test]
    fn roofline_picks_dominant_side() {
        let spec = DeviceSpec::gt560m();
        // Compute-heavy warp.
        let heavy_alu = warp(1_000_000, 1);
        // Memory-heavy warp.
        let heavy_mem = warp(1, 1_000_000);
        let c = heavy_alu.compute_cycles(&spec);
        let m = heavy_mem.memory_cycles(&spec);
        assert!(c > heavy_alu.memory_cycles(&spec));
        assert!(m > heavy_mem.compute_cycles(&spec));
    }

    #[test]
    fn more_blocks_than_sms_serializes() {
        let spec = DeviceSpec::gt560m(); // 4 SMs
        let one_block = vec![vec![warp(1000, 0)]];
        let t1 = model_kernel_time(&spec, &LaunchConfig::linear(1, 32), &one_block, 1);
        let eight_blocks: Vec<_> = (0..8).map(|_| vec![warp(1000, 0)]).collect();
        let t8 = model_kernel_time(&spec, &LaunchConfig::linear(8, 32), &eight_blocks, 1);
        assert!(t8.blocks_serialized);
        assert!(!t1.blocks_serialized);
        // 8 blocks over 4 SMs → exactly 2 per SM → twice the critical cycles.
        assert!((t8.critical_sm_cycles - 2.0 * t1.critical_sm_cycles).abs() < 1e-9);
    }

    #[test]
    fn four_blocks_on_four_sms_run_concurrently() {
        let spec = DeviceSpec::gt560m();
        let blocks: Vec<_> = (0..4).map(|_| vec![warp(1000, 0)]).collect();
        let t4 = model_kernel_time(&spec, &LaunchConfig::linear(4, 32), &blocks, 1);
        let t1 = model_kernel_time(&spec, &LaunchConfig::linear(1, 32), &blocks[..1], 1);
        assert!((t4.critical_sm_cycles - t1.critical_sm_cycles).abs() < 1e-9);
    }

    #[test]
    fn launch_overhead_floors_tiny_kernels() {
        let spec = DeviceSpec::gt560m();
        let t = model_kernel_time(&spec, &LaunchConfig::linear(1, 32), &[vec![warp(1, 0)]], 1);
        assert!(t.seconds >= spec.launch_overhead);
    }

    #[test]
    fn barriers_add_sync_cycles() {
        let spec = DeviceSpec::gt560m();
        let blocks = vec![vec![warp(100, 0)]];
        let p1 = model_kernel_time(&spec, &LaunchConfig::linear(1, 32), &blocks, 1);
        let p3 = model_kernel_time(&spec, &LaunchConfig::linear(1, 32), &blocks, 3);
        assert!(
            (p3.critical_sm_cycles - p1.critical_sm_cycles - 2.0 * spec.sync_cycles).abs() < 1e-9
        );
    }

    #[test]
    fn add_accumulates() {
        let mut a = warp(5, 2);
        a.add(&warp(3, 4));
        assert_eq!(a.alu, 8);
        assert_eq!(a.global_transactions, 6);
    }
}
