//! Integration tests of the simulator's execution semantics: bulk memory
//! operations, barrier ordering, cross-block race detection, and the
//! monotonicity of the performance model.

use cuda_sim::{DeviceCtx, DeviceSpec, Gpu, Kernel, LaunchConfig, LaunchError};

/// Reverses its row via bulk read + bulk write.
struct RowReverse {
    n: usize,
}
impl Kernel for RowReverse {
    type Shared = ();
    type ThreadState = Vec<i64>;
    fn name(&self) -> &str {
        "row_reverse"
    }
    fn make_shared(&self, _b: usize) {}
    fn phase<C: DeviceCtx>(&self, _p: usize, ctx: &mut C, _s: &mut (), row: &mut Vec<i64>) {
        let buf = ctx.arg_buf(0);
        let gid = ctx.global_id();
        row.resize(self.n, 0);
        ctx.read_slice_into::<i64>(buf, gid * self.n, row);
        row.reverse();
        ctx.write_slice::<i64>(buf, gid * self.n, row);
    }
}

#[test]
fn bulk_read_write_round_trip() {
    let mut gpu = Gpu::new(DeviceSpec::gt560m());
    gpu.set_race_detection(true);
    let n = 5;
    let buf = gpu.alloc::<i64>(4 * n);
    let data: Vec<i64> = (0..20).collect();
    gpu.h2d(buf, &data);
    let stats = gpu
        .launch(&RowReverse { n }, LaunchConfig::linear(2, 2), &[buf.erased()])
        .unwrap();
    let out = gpu.d2h(buf);
    assert_eq!(&out[..5], &[4, 3, 2, 1, 0]);
    assert_eq!(&out[15..], &[19, 18, 17, 16, 15]);
    // Bulk ops charge per element: 4 threads × (5 reads + 5 writes).
    assert_eq!(stats.total_cost.global_transactions, 4 * 10);
}

/// Thread 0 copies row 0 → row 1 with `copy_row`.
struct CopyFirstRow {
    n: usize,
}
impl Kernel for CopyFirstRow {
    type Shared = ();
    type ThreadState = ();
    fn name(&self) -> &str {
        "copy_first_row"
    }
    fn make_shared(&self, _b: usize) {}
    fn phase<C: DeviceCtx>(&self, _p: usize, ctx: &mut C, _s: &mut (), _t: &mut ()) {
        if ctx.global_id() == 0 {
            let src = ctx.arg_buf(0);
            let dst = ctx.arg_buf(1);
            ctx.copy_row::<i64>(src, 0, dst, self.n, self.n);
        }
    }
}

#[test]
fn copy_row_across_and_within_buffers() {
    let mut gpu = Gpu::new(DeviceSpec::gt560m());
    let a = gpu.alloc::<i64>(6);
    gpu.h2d(a, &[7, 8, 9, 0, 0, 0]);
    let b = gpu.alloc::<i64>(6);
    // Across buffers (a → b, offset 3).
    gpu.launch(&CopyFirstRow { n: 3 }, LaunchConfig::linear(1, 1), &[a.erased(), b.erased()])
        .unwrap();
    assert_eq!(gpu.d2h(b), vec![0, 0, 0, 7, 8, 9]);
    // Within one buffer (a → a, offset 3).
    gpu.launch(&CopyFirstRow { n: 3 }, LaunchConfig::linear(1, 1), &[a.erased(), a.erased()])
        .unwrap();
    assert_eq!(gpu.d2h(a), vec![7, 8, 9, 7, 8, 9]);
}

/// Block 0 writes location 0 in phase 0; block 1 reads it in phase 1.
/// Phases only order threads *within* a block — this is a true CUDA race.
struct CrossBlockRace;
impl Kernel for CrossBlockRace {
    type Shared = ();
    type ThreadState = ();
    fn name(&self) -> &str {
        "cross_block_race"
    }
    fn make_shared(&self, _b: usize) {}
    fn num_phases(&self) -> usize {
        2
    }
    fn phase<C: DeviceCtx>(&self, p: usize, ctx: &mut C, _s: &mut (), _t: &mut ()) {
        let buf = ctx.arg_buf(0);
        if p == 0 && ctx.block_idx() == 0 && ctx.thread_idx() == 0 {
            ctx.write(buf, 0, 1i64);
        }
        if p == 1 && ctx.block_idx() == 1 && ctx.thread_idx() == 0 {
            let _: i64 = ctx.read(buf, 0);
        }
    }
}

#[test]
fn cross_block_access_is_a_race_even_across_phases() {
    let mut gpu = Gpu::new(DeviceSpec::gt560m());
    gpu.set_race_detection(true);
    let buf = gpu.alloc::<i64>(1);
    let err = gpu
        .launch(&CrossBlockRace, LaunchConfig::linear(2, 1), &[buf.erased()])
        .unwrap_err();
    assert!(matches!(err, LaunchError::DataRace(_)), "{err}");
}

/// Same pattern within ONE block: phase 0 write, phase 1 read by another
/// thread — ordered by the barrier, NOT a race.
struct BarrierOrdered;
impl Kernel for BarrierOrdered {
    type Shared = ();
    type ThreadState = ();
    fn name(&self) -> &str {
        "barrier_ordered"
    }
    fn make_shared(&self, _b: usize) {}
    fn num_phases(&self) -> usize {
        2
    }
    fn phase<C: DeviceCtx>(&self, p: usize, ctx: &mut C, _s: &mut (), _t: &mut ()) {
        let buf = ctx.arg_buf(0);
        if p == 0 && ctx.thread_idx() == 0 {
            ctx.write(buf, 0, 42i64);
        }
        if p == 1 && ctx.thread_idx() == 1 {
            let v: i64 = ctx.read(buf, 0);
            ctx.write(buf, 1, v + 1);
        }
    }
}

#[test]
fn barrier_ordered_accesses_are_not_a_race() {
    let mut gpu = Gpu::new(DeviceSpec::gt560m());
    gpu.set_race_detection(true);
    let buf = gpu.alloc::<i64>(2);
    gpu.launch(&BarrierOrdered, LaunchConfig::linear(1, 2), &[buf.erased()]).unwrap();
    assert_eq!(gpu.d2h(buf), vec![42, 43]);
}

/// A memory-heavy kernel models slower than a light one; doubling work at
/// least doubles neither nothing — monotone model sanity.
struct Toucher {
    reads_per_thread: usize,
}
impl Kernel for Toucher {
    type Shared = ();
    type ThreadState = ();
    fn name(&self) -> &str {
        "toucher"
    }
    fn make_shared(&self, _b: usize) {}
    fn phase<C: DeviceCtx>(&self, _p: usize, ctx: &mut C, _s: &mut (), _t: &mut ()) {
        let buf = ctx.arg_buf(0);
        for i in 0..self.reads_per_thread {
            let _: i64 = ctx.read(buf, i % buf.len());
        }
    }
}

#[test]
fn model_time_grows_with_work() {
    let mut gpu = Gpu::new(DeviceSpec::gt560m());
    let buf = gpu.alloc::<i64>(64);
    let cfg = LaunchConfig::linear(4, 32);
    let light = gpu.launch(&Toucher { reads_per_thread: 10 }, cfg, &[buf.erased()]).unwrap();
    let heavy = gpu.launch(&Toucher { reads_per_thread: 1000 }, cfg, &[buf.erased()]).unwrap();
    assert!(heavy.timing.seconds > light.timing.seconds);
    // 100× the traffic → at least 10× the kernel-only cycle count.
    assert!(heavy.timing.critical_sm_cycles > 10.0 * light.timing.critical_sm_cycles);
}

/// Reads its whole argument either through the plain global path or the
/// texture path (the paper's future-work proposal).
struct PathReader {
    use_texture: bool,
}
impl Kernel for PathReader {
    type Shared = ();
    type ThreadState = ();
    fn name(&self) -> &str {
        "path_reader"
    }
    fn make_shared(&self, _b: usize) {}
    fn phase<C: DeviceCtx>(&self, _p: usize, ctx: &mut C, _s: &mut (), _t: &mut ()) {
        let buf = ctx.arg_buf(0);
        for i in 0..buf.len() {
            if self.use_texture {
                let _: i64 = ctx.read_texture(buf, i);
            } else {
                let _: i64 = ctx.read(buf, i);
            }
        }
    }
}

/// The texture path returns identical data but models faster for read-only
/// sweeps (spatial cache amortization) — quantifying the paper's
/// future-work suggestion.
#[test]
fn texture_path_is_faster_for_read_only_sweeps() {
    let mut gpu = Gpu::new(DeviceSpec::gt560m());
    gpu.set_race_detection(true);
    let buf = gpu.alloc::<i64>(2048);
    gpu.h2d(buf, &(0..2048).collect::<Vec<i64>>());
    let cfg = LaunchConfig::linear(4, 64);
    let plain = gpu.launch(&PathReader { use_texture: false }, cfg, &[buf.erased()]).unwrap();
    let tex = gpu.launch(&PathReader { use_texture: true }, cfg, &[buf.erased()]).unwrap();
    assert_eq!(plain.total_cost.global_transactions, 256 * 2048);
    assert_eq!(tex.total_cost.texture_reads, 256 * 2048);
    assert!(
        tex.timing.critical_sm_cycles < plain.timing.critical_sm_cycles,
        "texture {} !< global {}",
        tex.timing.critical_sm_cycles,
        plain.timing.critical_sm_cycles
    );
}

#[test]
fn d2h_range_fetches_exact_window() {
    let mut gpu = Gpu::new(DeviceSpec::gt560m());
    let buf = gpu.alloc::<i64>(10);
    gpu.h2d(buf, &(0..10).collect::<Vec<i64>>());
    let before = gpu.profiler().transfer_seconds();
    let win = gpu.d2h_range(buf, 3, 4);
    assert_eq!(win, vec![3, 4, 5, 6]);
    assert!(gpu.profiler().transfer_seconds() > before);
}

#[test]
#[should_panic(expected = "out of bounds")]
fn d2h_range_checks_bounds() {
    let mut gpu = Gpu::new(DeviceSpec::gt560m());
    let buf = gpu.alloc::<i64>(4);
    let _ = gpu.d2h_range(buf, 2, 3);
}
