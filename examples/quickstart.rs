//! Quickstart: generate an OR-library-style benchmark instance, solve it
//! with the GPU-parallel asynchronous SA (on the simulated device), and
//! inspect the result, the schedule, and the kernel timeline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cdd_suite::core::{optimize_cdd_sequence, Schedule};
use cdd_suite::gpu::{run_gpu_sa, GpuSaParams};
use cdd_suite::instances;

fn main() {
    // A 50-job CDD benchmark instance (n = 50, instance 1, h = 0.6).
    let inst = instances::cdd_instance(50, 1, 0.6);
    println!(
        "instance: n = {}, d = {} (h = {:.1}), total processing = {}",
        inst.n(),
        inst.due_date(),
        inst.restrictive_factor(),
        inst.total_processing()
    );

    // The paper's configuration: 4 blocks x 192 threads, 1000 generations.
    let params = GpuSaParams::paper_1000();
    let result = run_gpu_sa(&inst, &params).expect("valid launch configuration");

    println!("\nbest objective found: {}", result.objective);
    println!("initial temperature (local move-scale rule): {:.1}", result.t0);
    println!("fitness evaluations: {}", result.evaluations);
    println!(
        "modeled GPU time: {:.3} ms (kernels {:.3} ms, transfers {:.3} ms)",
        result.modeled_seconds * 1e3,
        result.kernel_seconds * 1e3,
        result.transfer_seconds * 1e3
    );

    // Expand the winning sequence into an explicit schedule and verify it.
    let sol = optimize_cdd_sequence(&inst, &result.best);
    let schedule = Schedule::build(&inst, &result.best, sol.shift, None);
    schedule.validate(&inst).expect("optimizer schedules are feasible");
    assert_eq!(schedule.objective(&inst), result.objective);
    println!(
        "\nschedule: first job starts at t = {}, due-date position r = {}",
        sol.shift, sol.due_position
    );
    println!("first five positions of the best schedule:");
    for line in schedule.to_gantt(&inst).lines().take(5) {
        println!("  {line}");
    }

    println!("\nkernel timeline (the paper's Fig. 9/10 evidence):");
    for line in result.profiler_summary.lines() {
        println!("  {line}");
    }
}
