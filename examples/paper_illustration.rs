//! The paper's worked example, end to end: Table I data, the CDD
//! illustration of Section IV-A (Figs. 1–3) and the UCDDCP illustration of
//! Section IV-B (Figs. 4–6), reproducing the published optima 81 and 77.
//!
//! ```text
//! cargo run --example paper_illustration
//! ```

use cdd_suite::core::cdd_optimal::cdd_objective_with_shift;
use cdd_suite::core::{optimize_cdd_sequence, optimize_ucddcp_sequence, Schedule};
use cdd_suite::{Instance, JobSequence};

fn main() {
    let seq = JobSequence::identity(5);

    println!("=== Table I data ===");
    println!(" i   P_i  M_i  alpha  beta  gamma");
    let uc = Instance::paper_example_ucddcp();
    for (i, job) in uc.jobs().iter().enumerate() {
        println!(
            "{:>2}  {:>4} {:>4} {:>6} {:>5} {:>6}",
            i + 1,
            job.processing,
            job.min_processing,
            job.earliness_penalty,
            job.tardiness_penalty,
            job.compression_penalty
        );
    }

    // ---- CDD illustration (Section IV-A, d = 16) ----
    let cdd = Instance::paper_example_cdd();
    let (p, _, a, b, _) = cdd.to_arrays();
    println!("\n=== CDD illustration (d = 16) ===");

    println!("\nFig. 1 — packed schedule, first job starts at t = 0:");
    print_schedule(&cdd, &seq, 0);
    println!(
        "penalty = {}",
        cdd_objective_with_shift(&p, &a, &b, 16, seq.as_slice(), 0)
    );

    println!("\nFig. 2 — after the alignment shift of 3 units (job 3 at d):");
    print_schedule(&cdd, &seq, 3);
    println!(
        "penalty = {}",
        cdd_objective_with_shift(&p, &a, &b, 16, seq.as_slice(), 3)
    );

    let sol = optimize_cdd_sequence(&cdd, &seq);
    println!("\nFig. 3 — optimal schedule (shift {}; job 2 completes at d):", sol.shift);
    print_schedule(&cdd, &seq, sol.shift);
    println!("optimal penalty = {} (paper: 81)", sol.objective);
    assert_eq!(sol.objective, 81);
    assert_eq!(sol.due_position, 2);

    // ---- UCDDCP illustration (Section IV-B, d = 22) ----
    println!("\n=== UCDDCP illustration (d = 22) ===");
    let usol = optimize_ucddcp_sequence(&uc, &seq);
    println!(
        "\nFig. 4 — CDD-optimal schedule before compression (penalty {}):",
        usol.cdd_objective
    );
    assert_eq!(usol.cdd_objective, 81);

    println!("\nFigs. 5–6 — compress jobs toward the due date:");
    for (i, &x) in usol.compressions.iter().enumerate() {
        if x > 0 {
            let job = uc.job(i);
            println!(
                "  job {} compressed by {} (P {} -> {}), tardiness saved at rate {} vs \
                 compression penalty {}",
                i + 1,
                x,
                job.processing,
                job.processing - x,
                job.tardiness_penalty,
                job.compression_penalty
            );
        }
    }
    let sched = Schedule::build(&uc, &seq, usol.shift, Some(&usol.compressions));
    sched.validate(&uc).expect("feasible");
    println!("\nfinal UCDDCP schedule:");
    print!("{}", sched.to_gantt(&uc));
    println!("optimal penalty = {} (paper: 77)", usol.objective);
    assert_eq!(usol.objective, 77);
    assert_eq!(usol.compressions, vec![0, 0, 0, 1, 1]);

    println!("\nBoth published optima reproduced.");
}

fn print_schedule(inst: &Instance, seq: &JobSequence, shift: i64) {
    let sched = Schedule::build(inst, seq, shift, None);
    print!("{}", sched.to_gantt(inst));
}
