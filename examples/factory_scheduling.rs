//! A realistic just-in-time production scenario — the kind of setting the
//! paper's introduction motivates.
//!
//! A machining center must finish 30 customer orders against a single
//! contractual delivery date. Finishing early means paying warehouse
//! storage per day (earliness penalty); finishing late means contractual
//! fines (tardiness penalty). Rush processing (overtime + extra tooling
//! wear) can shorten some orders at a cost — the controllable-processing-
//! time (UCDDCP) variant.
//!
//! The example compares three solvers on the same instance: GPU-parallel
//! SA, GPU-parallel DPSO, and the CPU reference ensemble, then prints the
//! recommended schedule.
//!
//! ```text
//! cargo run --release --example factory_scheduling
//! ```

use cdd_suite::core::eval::evaluator_for;
use cdd_suite::core::{optimize_ucddcp_sequence, Schedule};
use cdd_suite::gpu::{run_gpu_dpso, run_gpu_sa, GpuDpsoParams, GpuSaParams};
use cdd_suite::meta::{AsyncEnsemble, SaParams};
use cdd_suite::{Instance, Job};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // ---- Build the order book (deterministic for reproducibility). ----
    let mut rng = StdRng::seed_from_u64(20260706);
    let n = 30;
    let jobs: Vec<Job> = (0..n)
        .map(|_| {
            let machining_days: i64 = rng.gen_range(2..=15);
            let rushable = rng.gen_bool(0.6);
            let min_days = if rushable {
                ((machining_days * 2 + 2) / 3).max(1)
            } else {
                machining_days
            };
            Job::ucddcp(
                machining_days,
                min_days,
                rng.gen_range(1..=4),  // storage cost per day early
                rng.gen_range(3..=12), // contract fine per day late
                rng.gen_range(2..=8),  // rush cost per day saved
            )
        })
        .collect();
    let total: i64 = jobs.iter().map(|j| j.processing).sum();
    let delivery_date = total + 10; // unrestricted: modest slack before delivery
    let inst = Instance::ucddcp(jobs, delivery_date).expect("valid order book");

    println!(
        "order book: {} orders, {} machine-days of work, delivery on day {}",
        inst.n(),
        inst.total_processing(),
        inst.due_date()
    );

    // ---- Solve with the three approaches. ----
    let sa = run_gpu_sa(
        &inst,
        &GpuSaParams { blocks: 4, block_size: 64, iterations: 1500, ..Default::default() },
    )
    .expect("valid launch");
    println!(
        "\nGPU parallel SA   : total cost {:>6}  (modeled GPU time {:.2} ms)",
        sa.objective,
        sa.modeled_seconds * 1e3
    );

    let dpso = run_gpu_dpso(
        &inst,
        &GpuDpsoParams { blocks: 4, block_size: 64, iterations: 1500, ..Default::default() },
    )
    .expect("valid launch");
    println!(
        "GPU parallel DPSO : total cost {:>6}  (modeled GPU time {:.2} ms)",
        dpso.objective,
        dpso.modeled_seconds * 1e3
    );

    let eval = evaluator_for(&inst);
    let cpu = AsyncEnsemble::new(
        eval.as_ref(),
        16,
        SaParams { iterations: 1500, ..Default::default() },
    )
    .run(7);
    println!("CPU SA ensemble   : total cost {:>6}", cpu.objective);

    // ---- Report the best plan found. ----
    let (best_seq, label) = [(&sa, "GPU SA"), (&dpso, "GPU DPSO")]
        .iter()
        .min_by_key(|(r, _)| r.objective)
        .map(|(r, l)| (r.best.clone(), *l))
        .expect("two candidates");
    let best_seq = if cpu.objective < sa.objective.min(dpso.objective) {
        println!("\nrecommended plan comes from the CPU ensemble");
        cpu.best
    } else {
        println!("\nrecommended plan comes from {label}");
        best_seq
    };

    let sol = optimize_ucddcp_sequence(&inst, &best_seq);
    let sched = Schedule::build(&inst, &best_seq, sol.shift, Some(&sol.compressions));
    sched.validate(&inst).expect("feasible plan");

    println!(
        "plan cost {} = storage+fines {} − rush savings already netted; {} orders rushed",
        sol.objective,
        sol.cdd_objective,
        sol.compressions.iter().filter(|&&x| x > 0).count()
    );
    println!("\nproduction plan (first 10 slots):");
    for line in sched.to_gantt(&inst).lines().take(10) {
        println!("  {line}");
    }
    println!("  ...");
    println!(
        "machine idles until day {}, then runs the {} orders back-to-back.",
        sched.start_at(0),
        inst.n()
    );
}
