//! Parameter-tuning walkthrough for the knobs the paper discusses in
//! Sections VI and VIII: block size (192 on its device), exponential
//! cooling rate (0.88) and the T₀ rule (stddev of 5000 random fitness
//! samples).
//!
//! ```text
//! cargo run --release --example tuning_sweep
//! ```

use cdd_suite::core::eval::evaluator_for;
use cdd_suite::gpu::{run_gpu_sa, GpuSaParams};
use cdd_suite::instances;
use cdd_suite::meta::{initial_temperature, AsyncEnsemble, Cooling, SaParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let inst = instances::cdd_instance(100, 1, 0.6);
    println!("tuning on CDD n = 100, k = 1, h = 0.6 (d = {})\n", inst.due_date());

    // ---- T0 rule (Section VI). ----
    let eval = evaluator_for(&inst);
    let mut rng = StdRng::seed_from_u64(1);
    let t0 = initial_temperature(eval.as_ref(), 5000, &mut rng);
    println!("T0 from the stddev-of-5000-random-sequences rule: {t0:.1}");

    // ---- Block-size sweep at a fixed 768-thread ensemble (Section VIII). ----
    println!("\nblock-size sweep (768 threads, 300 generations):");
    println!("  block  blocks  objective  modeled-ms");
    for bs in [96usize, 192, 384, 768] {
        let blocks = 768usize.div_ceil(bs);
        let r = run_gpu_sa(
            &inst,
            &GpuSaParams { blocks, block_size: bs, iterations: 300, ..Default::default() },
        )
        .expect("within device limits");
        println!(
            "  {bs:>5}  {blocks:>6}  {:>9}  {:>9.3}",
            r.objective,
            r.modeled_seconds * 1e3
        );
    }
    println!("  (4 blocks of 192 keep all 4 SMs busy — the paper's configuration)");

    // ---- Cooling-rate sweep (Section VI). ----
    println!("\ncooling-rate sweep (CPU ensemble, 16 chains x 800 iterations):");
    println!("  schedule   best objective");
    for rate in [0.7, 0.8, 0.88, 0.95, 0.99] {
        let r = AsyncEnsemble::new(
            eval.as_ref(),
            16,
            SaParams {
                iterations: 800,
                cooling: Cooling::Exponential { rate },
                ..Default::default()
            },
        )
        .run(42);
        println!("  exp-{rate:<5}  {:>8}", r.objective);
    }
    println!("\nthe paper adopted mu = 0.88 from exactly this kind of sweep.");
}
