//! Offline vendored stand-in for the `rand` crate.
//!
//! The evaluation container has no network access and no crates.io cache, so
//! the workspace vendors the small `rand` API subset it actually uses:
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`]. Everything is
//! deterministic; `StdRng` is a SplitMix64 generator (64-bit state, full
//! avalanche output mix), which is statistically strong enough for the
//! metaheuristic and property tests in this repository.
//!
//! Semantics intentionally match `rand 0.8` for the subset provided; streams
//! differ (no compatibility with upstream `StdRng` output is promised, and
//! none is relied on — all seeds in this repo only feed our own code).

/// Low-level generator interface: everything builds on [`next_u64`].
///
/// [`next_u64`]: RngCore::next_u64
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from their full domain by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (the `rand` rule).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range; panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing generator interface (blanket-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Sample a value uniformly from `T`'s full domain (`[0, 1)` for
    /// floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One warm-up mix so nearby seeds decorrelate immediately.
            let mut rng = StdRng { state: seed ^ 0x5851_F42D_4C95_7F2D };
            let _ = rng.next_u64();
            rng
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element (`None` on an empty slice).
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..=9i64);
            assert!((3..=9).contains(&v));
            let u = rng.gen_range(0..5usize);
            assert!(u < 5);
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn negative_int_ranges() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn works_through_dyn_and_ref() {
        fn takes_generic<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0..10u64)
        }
        let mut rng = StdRng::seed_from_u64(5);
        assert!(takes_generic(&mut rng) < 10);
    }
}
