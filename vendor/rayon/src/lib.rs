//! Offline vendored stand-in for `rayon`.
//!
//! The evaluation host has a single CPU core and no crates.io access, so the
//! parallel-iterator calls degrade to their exact sequential equivalents:
//! `into_par_iter()`/`par_iter()` simply return the standard iterators, and
//! every adapter (`map`, `enumerate`, `collect`, …) is the `std::iter` one.
//! Results are bit-identical to what a real rayon pool would produce for the
//! deterministic map-collect patterns this workspace uses.

/// Sequential stand-ins for rayon's prelude traits.
pub mod prelude {
    /// `into_par_iter()` — sequential fallback returning the plain iterator.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Identical to [`IntoIterator::into_iter`].
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<I: IntoIterator> IntoParallelIterator for I {}

    /// `par_iter()` on slices and `Vec`s — sequential fallback.
    pub trait ParallelRefIterator {
        /// Element type.
        type Item;

        /// Identical to `.iter()`.
        fn par_iter(&self) -> std::slice::Iter<'_, Self::Item>;
    }

    impl<T> ParallelRefIterator for [T] {
        type Item = T;
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
    }

    impl<T> ParallelRefIterator for Vec<T> {
        type Item = T;
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.as_slice().iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn sequential_fallbacks_match_std() {
        let doubled: Vec<usize> = (0..5usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![0, 2, 4, 6, 8]);
        let v = vec![3, 1, 2];
        let indexed: Vec<(usize, i32)> = v.par_iter().enumerate().map(|(i, &x)| (i, x)).collect();
        assert_eq!(indexed, vec![(0, 3), (1, 1), (2, 2)]);
    }
}
