//! Offline vendored stand-in for `criterion`.
//!
//! Provides the API subset the workspace benches use (`benchmark_group`,
//! `sample_size`, `measurement_time`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, the `criterion_group!`/`criterion_main!` macros) with a
//! minimal measurement loop: each benchmark body runs `sample_size`
//! iterations and the mean wall time is printed. No statistics, HTML
//! reports, or baselines — enough to keep `cargo bench` compiling and
//! producing indicative numbers offline.

use std::fmt;
use std::time::{Duration, Instant};

/// Benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Function name + parameter.
    pub fn new<P: fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId { label: format!("{function}/{parameter}") }
    }

    /// Parameter-only id.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Run `f` for the configured iteration count, recording wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.total = start.elapsed();
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Iterations per benchmark (upstream: samples per estimate).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Accepted for API compatibility; the stand-in's budget is iteration
    /// count, not wall time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { iters: self.sample_size, total: Duration::ZERO };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Benchmark a closure with an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { iters: self.sample_size, total: Duration::ZERO };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Finish the group (upstream writes reports; here a no-op).
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let mean = b.total.as_secs_f64() / b.iters.max(1) as f64;
        println!("{}/{}: {:.6e} s/iter ({} iters)", self.name, id, mean, b.iters);
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, _parent: self }
    }
}

/// Hide a value from the optimizer.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declare a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times_bodies() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3).measurement_time(Duration::from_millis(1));
        let mut runs = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            })
        });
        group.bench_function("f", |b| b.iter(|| 1 + 1));
        group.finish();
        assert_eq!(runs, 3);
    }
}
