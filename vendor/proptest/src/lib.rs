//! Offline vendored stand-in for the `proptest` crate.
//!
//! The evaluation container cannot download crates, so this crate implements
//! the subset of proptest the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, `prop::collection::vec`, `any::<T>()` (including
//! `prop::sample::Index`), [`ProptestConfig::with_cases`], and the
//! [`proptest!`]/[`prop_assert!`] macros.
//!
//! Differences from upstream, deliberate for an offline test rig:
//!
//! * cases are generated from a deterministic per-test SplitMix64 stream
//!   (seeded by the test name), so failures reproduce exactly;
//! * there is **no shrinking** — a failing case reports its inputs via the
//!   ordinary assertion panic;
//! * `prop_assert!`/`prop_assert_eq!` are plain `assert!`/`assert_eq!`
//!   aliases (panics, not `Err` returns).

use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 stream driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Stream for case number `case` of test `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the test name
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h ^ ((case as u64) << 32 | case as u64) }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling bound");
        self.next_u64() % bound
    }
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A value generator. Unlike upstream there is no value tree / shrinking —
/// `generate` directly yields a value.
pub trait Strategy {
    /// Generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "anything" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

/// Strategy for an [`Arbitrary`] type.
pub struct Any<T> {
    _ph: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _ph: std::marker::PhantomData }
}

/// The `prop::` namespace (`prop::collection::vec`, `prop::sample::Index`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Lengths accepted by [`vec`]: a fixed `usize` or a `Range<usize>`.
        pub trait IntoLen {
            /// Draw a concrete length.
            fn draw_len(&self, rng: &mut TestRng) -> usize;
        }

        impl IntoLen for usize {
            fn draw_len(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl IntoLen for core::ops::Range<usize> {
            fn draw_len(&self, rng: &mut TestRng) -> usize {
                assert!(self.start < self.end, "empty length range");
                self.start + rng.below((self.end - self.start) as u64) as usize
            }
        }

        /// Strategy for `Vec<S::Value>` of the given length (or length
        /// range).
        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        impl<S: Strategy, L: IntoLen> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.len.draw_len(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `prop::collection::vec(element, len)`.
        pub fn vec<S: Strategy, L: IntoLen>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }
    }

    /// Sampling helpers.
    pub mod sample {
        use crate::{Arbitrary, TestRng};

        /// An index into a collection whose size is only known at use time
        /// (`any::<Index>()` then `idx.index(len)`).
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct Index(u64);

        impl Index {
            /// Map onto `0..size` (`size` must be non-zero).
            pub fn index(&self, size: usize) -> usize {
                assert!(size > 0, "Index::index on empty collection");
                (self.0 % size as u64) as usize
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Self {
                Index(rng.next_u64())
            }
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Assert inside a property test (plain `assert!`; no shrink path).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The proptest entry macro: expands each `fn name(arg in strategy, ...)`
/// into a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __proptest_rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Tuple + range + flat-map strategies compose.
        #[test]
        fn composed_strategies_stay_in_bounds(
            n in 1usize..10,
            pair in (1..=5i64, 0.0..1.0f64),
            v in prop::collection::vec(0..=9u32, 3),
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!((1..10).contains(&n));
            prop_assert!((1..=5).contains(&pair.0));
            prop_assert!((0.0..1.0).contains(&pair.1));
            prop_assert_eq!(v.len(), 3);
            prop_assert!(v.iter().all(|&x| x <= 9));
            prop_assert!(idx.index(n) < n);
        }
    }

    #[test]
    fn flat_map_derives_dependent_strategy() {
        let strat = (2usize..6).prop_flat_map(|n| prop::collection::vec(0..10u32, n));
        let mut rng = TestRng::for_case("flat_map", 0);
        for _ in 0..100 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = TestRng::for_case("x", 3);
        let mut b = TestRng::for_case("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("y", 3);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use crate::{Strategy, TestRng};
}
